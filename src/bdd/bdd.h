// Reduced Ordered Binary Decision Diagrams.
//
// The paper (section 2, "Analysis of control signals") models RT-template
// execution conditions as BDDs whose variables are instruction-word bits and
// mode-register bits. This is a from-scratch ROBDD package providing exactly
// what instruction-set extraction and code compaction need:
//
//   * canonical node table (unique table) with creation-order variable order,
//   * ite/and/or/xor/not with a computed-table cache,
//   * restrict (cofactor) and compose (substitute a function for a variable),
//   * satisfiability, implication, model extraction and model counting,
//   * support computation and a stable textual dump for tests.
//
// There is no garbage collection: condition BDDs in this domain are small
// (tens of variables) and a manager lives exactly as long as the retarget
// result owning it — compile jobs add a few nodes per immediate conjunction,
// and all of it is reclaimed when the target is dropped (e.g. evicted from
// the service::TargetRegistry LRU and released by its last job).
//
// Thread safety: every operation that touches the node table — construction
// of new BDDs (ite, literal, restrict, compose, exists and the inline
// connectives), queries and traversals (eval, any_sat, sat_count, support,
// to_string, to_sop, top_var/low/high, node_count) — is internally
// serialised by a per-manager mutex, so a manager owned by a shared
// rtl::TemplateBase may be used by concurrent core::Compiler::compile jobs.
// Variable *registration* is the exception: new_var is not synchronised
// against var_name/var_count/find_var readers, so all variables must be
// registered before the manager is shared across threads. The retargeting
// pipeline satisfies this: it registers variables single-threaded, and
// compile-time users only read the variable table.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace record::bdd {

/// Handle to a BDD node owned by a BddManager. Value 0 is the constant FALSE,
/// value 1 the constant TRUE. Handles are only meaningful together with the
/// manager that produced them.
using Ref = std::uint32_t;

inline constexpr Ref kFalse = 0;
inline constexpr Ref kTrue = 1;

/// A (partial) variable assignment: variable index -> value.
using Assignment = std::vector<std::pair<int, bool>>;

class BddManager {
 public:
  BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;
  BddManager(BddManager&&) = delete;
  BddManager& operator=(BddManager&&) = delete;

  // --- variables ---------------------------------------------------------

  /// Registers a new Boolean variable; returns its index. Variables are
  /// ordered by registration order (smaller index = closer to the root).
  int new_var(std::string name);

  [[nodiscard]] int var_count() const { return static_cast<int>(names_.size()); }
  [[nodiscard]] const std::string& var_name(int v) const { return names_.at(static_cast<std::size_t>(v)); }

  /// Finds a variable by name; -1 if absent.
  [[nodiscard]] int find_var(std::string_view name) const;

  // --- leaf/literal constructors -----------------------------------------

  [[nodiscard]] static Ref zero() { return kFalse; }
  [[nodiscard]] static Ref one() { return kTrue; }
  [[nodiscard]] Ref literal(int v, bool positive);
  [[nodiscard]] Ref var(int v) { return literal(v, true); }
  [[nodiscard]] Ref nvar(int v) { return literal(v, false); }

  // --- Boolean connectives ------------------------------------------------

  [[nodiscard]] Ref ite(Ref f, Ref g, Ref h);
  [[nodiscard]] Ref land(Ref f, Ref g) { return ite(f, g, kFalse); }
  [[nodiscard]] Ref lor(Ref f, Ref g) { return ite(f, kTrue, g); }
  [[nodiscard]] Ref lnot(Ref f) { return ite(f, kFalse, kTrue); }
  [[nodiscard]] Ref lxor(Ref f, Ref g) { return ite(f, lnot(g), g); }
  [[nodiscard]] Ref limp(Ref f, Ref g) { return ite(f, g, kTrue); }

  // --- structural operations ----------------------------------------------

  /// Cofactor: f with variable v fixed to `value`.
  [[nodiscard]] Ref restrict(Ref f, int v, bool value);

  /// Substitution: f with variable v replaced by function g.
  [[nodiscard]] Ref compose(Ref f, int v, Ref g);

  /// Existential quantification over one variable.
  [[nodiscard]] Ref exists(Ref f, int v);

  // --- queries -------------------------------------------------------------

  [[nodiscard]] static bool is_const(Ref f) { return f <= kTrue; }
  [[nodiscard]] bool is_sat(Ref f) const { return f != kFalse; }
  [[nodiscard]] bool is_tautology(Ref f) const { return f == kTrue; }
  [[nodiscard]] bool implies(Ref f, Ref g) { return limp(f, g) == kTrue; }
  [[nodiscard]] bool disjoint(Ref f, Ref g) { return land(f, g) == kFalse; }

  /// Evaluate under a complete assignment (missing variables default false).
  [[nodiscard]] bool eval(Ref f, const Assignment& a) const;

  /// One satisfying partial assignment (mentions only variables on the
  /// extracted path); nullopt iff f is FALSE.
  [[nodiscard]] std::optional<Assignment> any_sat(Ref f) const;

  /// Number of satisfying assignments over `nvars` variables
  /// (nvars >= highest variable in f's support + 1).
  [[nodiscard]] std::uint64_t sat_count(Ref f, int nvars) const;

  /// Sorted list of variables f depends on.
  [[nodiscard]] std::vector<int> support(Ref f) const;

  /// Number of live nodes including the two constants.
  [[nodiscard]] std::size_t node_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return nodes_.size();
  }

  /// Stable textual form, e.g. "(b1 ? (b0 ? 1 : 0) : 0)" — used by tests.
  [[nodiscard]] std::string to_string(Ref f) const;

  /// Sum-of-products form using variable names, e.g. "b1&b0 | !b1&b2".
  /// Enumerates the BDD's 1-paths; intended for small condition BDDs.
  [[nodiscard]] std::string to_sop(Ref f) const;

  // --- top-of-node accessors (needed by compose/emitters) -------------------

  [[nodiscard]] int top_var(Ref f) const {
    std::lock_guard<std::mutex> lock(mu_);
    return node(f).var;
  }
  [[nodiscard]] Ref low(Ref f) const {
    std::lock_guard<std::mutex> lock(mu_);
    return node(f).lo;
  }
  [[nodiscard]] Ref high(Ref f) const {
    std::lock_guard<std::mutex> lock(mu_);
    return node(f).hi;
  }

 private:
  struct Node {
    int var;  // variable index; constants use a sentinel beyond all vars
    Ref lo;
    Ref hi;
  };

  struct NodeKey {
    int var;
    Ref lo;
    Ref hi;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      std::size_t h = static_cast<std::size_t>(k.var);
      h = h * 1000003u ^ k.lo;
      h = h * 1000003u ^ k.hi;
      return h;
    }
  };
  struct IteKey {
    Ref f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      std::size_t x = k.f;
      x = x * 1000003u ^ k.g;
      x = x * 1000003u ^ k.h;
      return x;
    }
  };

  [[nodiscard]] const Node& node(Ref r) const { return nodes_[r]; }
  [[nodiscard]] Ref make_node(int var, Ref lo, Ref hi);
  [[nodiscard]] int level(Ref r) const { return node(r).var; }

  // Unlocked recursive cores; callers hold mu_.
  [[nodiscard]] Ref ite_rec(Ref f, Ref g, Ref h);
  [[nodiscard]] Ref restrict_rec(Ref f, int v, bool value);
  [[nodiscard]] std::string to_string_rec(Ref f) const;

  void collect_support(Ref f, std::vector<bool>& seen,
                       std::vector<bool>& vars) const;
  double sat_fraction(Ref f, std::unordered_map<Ref, double>& memo) const;
  void to_sop_rec(Ref f, std::vector<std::pair<int, bool>>& path,
                  std::vector<std::string>& cubes) const;

  static constexpr int kConstLevel = 1 << 30;

  /// Serialises node-table access (see the thread-safety note above). The
  /// variable table (names_) is intentionally outside the contract: it is
  /// frozen before the manager is shared.
  mutable std::mutex mu_;
  std::vector<Node> nodes_;
  std::vector<std::string> names_;
  std::unordered_map<NodeKey, Ref, NodeKeyHash> unique_;
  std::unordered_map<IteKey, Ref, IteKeyHash> ite_cache_;
};

/// A little-endian vector of condition BDDs representing a symbolic bus or
/// port value: bits()[i] is the BDD for bit i. Used by control-signal
/// analysis to propagate instruction-word bits through decoders.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::vector<Ref> bits) : bits_(std::move(bits)) {}

  /// All-constant vector of the given width holding `value`.
  static BitVec constant(std::uint64_t value, int width);

  [[nodiscard]] int width() const { return static_cast<int>(bits_.size()); }
  [[nodiscard]] Ref bit(int i) const { return bits_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const std::vector<Ref>& bits() const { return bits_; }

  /// bits [lo, hi] inclusive as a new vector (hi >= lo).
  [[nodiscard]] BitVec slice(int hi, int lo) const;

  /// Concatenation: `high` occupies the upper bits of the result.
  [[nodiscard]] static BitVec concat(const BitVec& high, const BitVec& low);

  /// Condition BDD for "this == value" (value zero-extended/truncated to
  /// width).
  [[nodiscard]] Ref equals_const(BddManager& mgr, std::uint64_t value) const;

  /// Condition BDD for "this == other"; widths must match.
  [[nodiscard]] Ref equals(BddManager& mgr, const BitVec& other) const;

  /// True if every bit is constant; then `constant_value` is meaningful.
  [[nodiscard]] bool is_constant() const;
  [[nodiscard]] std::uint64_t constant_value() const;

 private:
  std::vector<Ref> bits_;
};

}  // namespace record::bdd
