// Dependence DAG over selected RTs (input to code compaction, paper [17]).
//
// Edges carry a minimum cycle distance. Because the processor class is
// time-stationary with single-cycle RTs, parallel RTs in one instruction
// word read *old* register values:
//   RAW (write -> read)  latency 1   consumer needs the new value
//   WAW (write -> write) latency 1   destination port conflict
//   WAR (read -> write)  latency 0   same-cycle is legal (reads old value)
// Memory is treated as one location per memory instance (two reads are
// independent; read/write and write/write pairs conflict). Labels and
// branches delimit scheduling regions; a branch must be the region's last
// cycle.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "select/selector.h"

namespace record::compact {

struct DepEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  int latency = 1;
  /// Region-termination edge keeping the branch scheduled last; carries no
  /// data dependence, so the delay-slot filler may move the source word
  /// past the branch.
  bool control = false;
};

/// One scheduling region (basic block) of the flattened program.
struct Region {
  std::string label;  // entry label; empty for fall-through regions
  std::vector<const select::SelectedRT*> rts;
  std::vector<DepEdge> edges;
  bool ends_with_branch = false;
};

/// Splits the selection result at labels/branches and builds per-region
/// dependence edges.
[[nodiscard]] std::vector<Region> build_regions(
    const select::SelectionResult& sel);

}  // namespace record::compact
