// Code compaction: packing selected RTs into horizontal instruction words
// (paper section 3.2 / reference [17], "Time-constrained Code Compaction for
// DSPs").
//
// List scheduling over the dependence DAG; two RTs may share an instruction
// word iff their dependence distances allow it AND the conjunction of their
// BDD execution conditions is satisfiable (instruction-encoding
// compatibility, including immediate-field values) AND they do not write the
// same location. Mode-register requirements are tracked across the schedule:
// when an RT needs mode bits different from the current machine state, a
// mode-set instruction is inserted (selected from the target's own
// mode-register templates).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "compact/depdag.h"
#include "rtl/template.h"
#include "select/selector.h"
#include "util/diagnostics.h"

namespace record::compact {

struct CompactOptions {
  /// Disabled by the compaction-ablation benchmark: every RT becomes its own
  /// instruction word.
  bool enabled = true;
  /// Track mode-register state and insert mode-set instructions.
  bool handle_modes = true;
};

/// One horizontal instruction word.
struct Word {
  std::vector<const select::SelectedRT*> rts;
  bdd::Ref cond = bdd::kTrue;  // conjunction of all packed conditions
  bool has_branch = false;
  std::string branch_target;
};

struct CompactedRegion {
  std::string label;
  std::vector<Word> words;
};

struct CompactedProgram {
  std::vector<CompactedRegion> regions;
  /// Mode-set RTs created during compaction (owned here; Words point into
  /// this pool as well as into the selection result).
  std::vector<std::unique_ptr<select::SelectedRT>> synthesized;

  [[nodiscard]] std::size_t word_count() const;
};

struct CompactStats {
  std::size_t input_rts = 0;
  std::size_t words = 0;
  std::size_t pairs_rejected_encoding = 0;  // condition conjunction UNSAT
  std::size_t mode_sets_inserted = 0;
};

struct CompactResult {
  CompactedProgram program;
  CompactStats stats;
};

[[nodiscard]] CompactResult compact(const select::SelectionResult& sel,
                                    const rtl::TemplateBase& base,
                                    const CompactOptions& options,
                                    util::DiagnosticSink& diags);

}  // namespace record::compact
