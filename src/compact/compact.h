// Code compaction: packing selected RTs into horizontal instruction words
// (paper section 3.2 / reference [17], "Time-constrained Code Compaction for
// DSPs").
//
// List scheduling over the dependence DAG; two RTs may share an instruction
// word iff their dependence distances allow it AND the conjunction of their
// BDD execution conditions is satisfiable (instruction-encoding
// compatibility, including immediate-field values) AND they do not write the
// same location. Mode-register requirements are tracked across the schedule:
// when an RT needs mode bits different from the current machine state, a
// mode-set instruction is inserted (selected from the target's own
// mode-register templates).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "compact/depdag.h"
#include "rtl/template.h"
#include "select/selector.h"
#include "util/diagnostics.h"

namespace record::compact {

struct CompactOptions {
  /// Disabled by the compaction-ablation benchmark: every RT becomes its own
  /// instruction word.
  bool enabled = true;
  /// Track mode-register state and insert mode-set instructions.
  bool handle_modes = true;
};

/// One horizontal instruction word. A word with no RTs is a NOP inserted to
/// pad an unfilled branch delay slot; the encoder suppresses every writer so
/// it executes as "do nothing visible".
struct Word {
  std::vector<const select::SelectedRT*> rts;
  bdd::Ref cond = bdd::kTrue;  // conjunction of all packed conditions
  bool has_branch = false;
  bool is_mode_set = false;  // synthesized mode-register set word
  std::string branch_target;
};

struct CompactedRegion {
  std::string label;
  std::vector<Word> words;
};

struct CompactedProgram {
  std::vector<CompactedRegion> regions;
  /// Mode-set RTs created during compaction (owned here; Words point into
  /// this pool as well as into the selection result).
  std::vector<std::unique_ptr<select::SelectedRT>> synthesized;

  [[nodiscard]] std::size_t word_count() const;
};

struct CompactStats {
  std::size_t input_rts = 0;
  std::size_t words = 0;
  std::size_t pairs_rejected_encoding = 0;  // condition conjunction UNSAT
  std::size_t mode_sets_inserted = 0;
  std::size_t multi_rt_words = 0;      // words packing >= 2 RTs
  std::size_t total_slot_rts = 0;      // sum of RTs over all words
  std::size_t delay_slots_filled = 0;  // words moved into branch delay slots
  std::size_t delay_nops_inserted = 0; // NOP words padding delay slots
};

struct CompactResult {
  CompactedProgram program;
  CompactStats stats;
};

[[nodiscard]] CompactResult compact(const select::SelectionResult& sel,
                                    const rtl::TemplateBase& base,
                                    const CompactOptions& options,
                                    util::DiagnosticSink& diags);

}  // namespace record::compact
