#include "compact/compact.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>

#include "sim/value.h"
#include "util/strings.h"

namespace record::compact {

using util::fmt;

std::size_t CompactedProgram::word_count() const {
  std::size_t n = 0;
  for (const CompactedRegion& r : regions) n += r.words.size();
  return n;
}

namespace {

/// Required mode-register literals of a condition: variables `M:...` whose
/// phase is forced (cond implies var=b).
std::vector<std::pair<int, bool>> required_modes(bdd::BddManager& mgr,
                                                 bdd::Ref cond) {
  std::vector<std::pair<int, bool>> out;
  for (int v : mgr.support(cond)) {
    if (mgr.var_name(v).rfind("M:", 0) != 0) continue;
    bool sat_pos = mgr.land(cond, mgr.var(v)) != bdd::kFalse;
    bool sat_neg = mgr.land(cond, mgr.nvar(v)) != bdd::kFalse;
    if (sat_pos && !sat_neg) out.emplace_back(v, true);
    if (!sat_pos && sat_neg) out.emplace_back(v, false);
  }
  return out;
}

/// Parses "M:<inst>[k]" -> (inst, k).
std::pair<std::string, int> parse_mode_var(const std::string& name) {
  std::size_t lb = name.rfind('[');
  std::string inst = name.substr(2, lb - 2);
  int bit = std::stoi(name.substr(lb + 1, name.size() - lb - 2));
  return {inst, bit};
}

class Compactor {
 public:
  Compactor(const select::SelectionResult& sel, const rtl::TemplateBase& base,
            const CompactOptions& options, util::DiagnosticSink& diags)
      : sel_(sel), base_(base), options_(options), diags_(diags) {}

  CompactResult run() {
    CompactResult result;
    std::vector<Region> regions = build_regions(sel_);
    for (Region& region : regions) {
      CompactedRegion out;
      out.label = region.label;
      if (options_.enabled)
        schedule_region(region, out, result);
      else
        sequential_region(region, out, result);
      result.program.regions.push_back(std::move(out));
    }
    result.stats.words = result.program.word_count();
    for (const CompactedRegion& r : result.program.regions) {
      for (const Word& w : r.words) {
        result.stats.total_slot_rts += w.rts.size();
        if (w.rts.size() >= 2) ++result.stats.multi_rt_words;
      }
    }
    return result;
  }

 private:
  void note_input(CompactResult& result, const Region& region) {
    result.stats.input_rts += region.rts.size();
  }

  void sequential_region(const Region& region, CompactedRegion& out,
                         CompactResult& result) {
    note_input(result, region);
    for (const select::SelectedRT* rt : region.rts) {
      Word w;
      w.rts.push_back(rt);
      w.cond = rt->cond;
      w.has_branch = rt->is_branch;
      w.branch_target = rt->branch_target;
      handle_modes(w, out, result);
      out.words.push_back(std::move(w));
    }
    fill_delay_slots(region, out, result);
  }

  void schedule_region(const Region& region, CompactedRegion& out,
                       CompactResult& result) {
    note_input(result, region);
    const std::size_t n = region.rts.size();
    if (n == 0) return;
    bdd::BddManager& mgr = *base_.mgr;

    std::vector<int> cycle(n, -1);
    std::vector<bool> scheduled(n, false);
    std::size_t remaining = n;
    int current = 0;

    // Critical-path heights: list-scheduling priority. Deeper chains go
    // first, which lets shallow RTs (e.g. a pending accumulate) pair with
    // later compatible RTs (e.g. the next multiply) — the MPYA/MACD fusion
    // pattern.
    std::vector<int> height(n, 0);
    for (std::size_t iter = 0; iter < n; ++iter) {
      bool changed = false;
      for (const DepEdge& e : region.edges) {
        int h = height[e.to] + (e.latency > 0 ? 1 : 0);
        if (h > height[e.from]) {
          height[e.from] = h;
          changed = true;
        }
      }
      if (!changed) break;
    }
    std::vector<std::size_t> priority(n);
    for (std::size_t i = 0; i < n; ++i) priority[i] = i;
    std::stable_sort(priority.begin(), priority.end(),
                     [&height](std::size_t a, std::size_t b) {
                       return height[a] > height[b];
                     });

    auto ready = [&](std::size_t i) {
      if (scheduled[i]) return false;
      for (const DepEdge& e : region.edges) {
        if (e.to != i) continue;
        if (!scheduled[e.from]) return false;
        if (cycle[e.from] + e.latency > current) return false;
      }
      return true;
    };

    while (remaining > 0) {
      Word w;
      bool packed_any = false;
      // Non-branch candidates first, by descending critical-path height.
      for (std::size_t i : priority) {
        const select::SelectedRT* rt = region.rts[i];
        if (rt->is_branch || !ready(i)) continue;
        bdd::Ref joint = mgr.land(w.cond, rt->cond);
        if (joint == bdd::kFalse) {
          if (w.rts.empty()) {
            // An RT whose own condition is unsatisfiable (should not happen
            // after selection) must still be placed to guarantee progress.
            diags_.warning({}, "placing RT with unsatisfiable condition");
            joint = rt->cond;
          } else {
            ++result.stats.pairs_rejected_encoding;
            continue;
          }
        }
        w.rts.push_back(rt);
        w.cond = joint;
        scheduled[i] = true;
        cycle[i] = current;
        --remaining;
        packed_any = true;
      }
      // The branch goes last: only when everything else is in flight.
      for (std::size_t i = 0; i < n && remaining > 0; ++i) {
        const select::SelectedRT* rt = region.rts[i];
        if (!rt->is_branch || !ready(i)) continue;
        if (remaining != 1) continue;  // other RTs still unscheduled
        bdd::Ref joint = mgr.land(w.cond, rt->cond);
        if (joint == bdd::kFalse) {
          ++result.stats.pairs_rejected_encoding;
          continue;
        }
        w.rts.push_back(rt);
        w.cond = joint;
        w.has_branch = true;
        w.branch_target = rt->branch_target;
        scheduled[i] = true;
        cycle[i] = current;
        --remaining;
        packed_any = true;
      }
      if (!w.rts.empty()) {
        handle_modes(w, out, result);
        out.words.push_back(std::move(w));
      }
      ++current;
      if (!packed_any && current > static_cast<int>(4 * n + 8)) {
        diags_.error({}, "compaction failed to make progress (cyclic "
                         "dependences?)");
        break;
      }
    }
    fill_delay_slots(region, out, result);
  }

  /// On machines with architectural branch delay slots (the PC register is
  /// written `branch_delay_slots` words late), the words after a taken
  /// branch still execute. Both region modes place the branch word last, so
  /// here we move an eligible suffix of the words immediately before the
  /// branch to after it — they execute before the jump lands either way —
  /// and pad the shortfall with NOP words. A word is eligible only if it has
  /// no dependence edge to or from the branch word's RTs, is not itself a
  /// branch or a synthesized mode-set, and writes neither the PC nor any
  /// storage the branch condition reads.
  void fill_delay_slots(const Region& region, CompactedRegion& out,
                        CompactResult& result) {
    const int d = base_.branch_delay_slots;
    if (d <= 0 || out.words.empty() || !out.words.back().has_branch) return;
    bdd::BddManager& mgr = *base_.mgr;

    std::map<const select::SelectedRT*, std::size_t> index;
    for (std::size_t i = 0; i < region.rts.size(); ++i)
      index[region.rts[i]] = i;
    const Word& branch = out.words.back();

    auto depends_on_branch = [&](const Word& x) {
      for (const select::SelectedRT* a : x.rts) {
        auto ia = index.find(a);
        if (ia == index.end()) return true;  // unknown provenance: be safe
        for (const select::SelectedRT* b : branch.rts) {
          auto ib = index.find(b);
          if (ib == index.end()) return true;
          for (const DepEdge& e : region.edges) {
            if (e.control) continue;  // branch-last ordering, not a data dep
            if ((e.from == ia->second && e.to == ib->second) ||
                (e.from == ib->second && e.to == ia->second))
              return true;
          }
        }
      }
      return false;
    };

    // Instances whose state the branch condition reads dynamically.
    std::set<std::string> cond_insts;
    for (int v : mgr.support(branch.cond)) {
      const std::string& n = mgr.var_name(v);
      if (n.rfind("S:", 0) == 0 || n.rfind("M:", 0) == 0) {
        std::string rest = n.substr(2);
        cond_insts.insert(rest.substr(0, rest.find_first_of(".[")));
      }
    }
    auto writes_sensitive = [&](const Word& x) {
      for (const select::SelectedRT* rt : x.rts)
        if (rt->dest == "PC" || cond_insts.count(rt->dest)) return true;
      return false;
    };

    std::size_t bpos = out.words.size() - 1;
    std::size_t movable = 0;
    while (movable < static_cast<std::size_t>(d) && bpos - movable > 0) {
      const Word& x = out.words[bpos - movable - 1];
      if (x.has_branch || x.is_mode_set) break;
      if (writes_sensitive(x) || depends_on_branch(x)) break;
      ++movable;
    }
    // [... X1..Xk B] -> [... B X1..Xk], order among the moved words kept.
    std::rotate(out.words.begin() + static_cast<std::ptrdiff_t>(bpos - movable),
                out.words.begin() + static_cast<std::ptrdiff_t>(bpos),
                out.words.end());
    result.stats.delay_slots_filled += movable;
    for (std::size_t i = movable; i < static_cast<std::size_t>(d); ++i) {
      Word nop;
      out.words.push_back(std::move(nop));
      ++result.stats.delay_nops_inserted;
    }
  }

  /// Ensures the machine's mode registers satisfy the word's requirements,
  /// inserting mode-set words as needed, then bakes the (now known) mode
  /// state into the word condition. The baking step matters on machines
  /// where alternative encodings are OR-merged across mode settings: without
  /// it the encoder's any_sat could pick instruction bits that only decode
  /// correctly under a mode the machine is not in.
  void handle_modes(Word& w, CompactedRegion& out, CompactResult& result) {
    if (!options_.handle_modes) return;
    bdd::BddManager& mgr = *base_.mgr;
    std::map<std::string, std::map<int, bool>> needed;  // inst -> bit -> val
    for (const auto& [var, val] : required_modes(mgr, w.cond)) {
      auto it = mode_state_.find(var);
      if (it != mode_state_.end() && it->second == val) continue;
      auto [inst, bit] = parse_mode_var(mgr.var_name(var));
      needed[inst][bit] = val;
      mode_state_[var] = val;
    }
    for (auto& [inst, bits] : needed) {
      // A synthesized set writes the WHOLE register, so every bit outside
      // the required set must carry its current value or the write would
      // clobber it (needing bit 0 := 1 while bit 1 already holds 1 must
      // write 3, not 1). Unknown bits read the deterministic reset
      // contents both simulators use.
      const rtl::StorageInfo* s = base_.find_storage(inst);
      const int width = s ? s->width : 0;
      for (int bit = 0; bit < width; ++bit) {
        if (bits.count(bit)) continue;
        int var = mgr.find_var(fmt("M:{}[{}]", inst, bit));
        auto it = var >= 0 ? mode_state_.find(var) : mode_state_.end();
        bool val;
        if (it != mode_state_.end()) {
          val = it->second;
        } else {
          std::uint64_t reset = static_cast<std::uint64_t>(
              sim::initial_value(inst, 0, width));
          val = ((reset >> bit) & 1u) != 0;
        }
        bits[bit] = val;
        if (var >= 0) mode_state_[var] = val;
      }
      const select::SelectedRT* set_rt = synthesize_mode_set(inst, bits,
                                                             result);
      if (!set_rt) {
        diags_.warning({}, fmt("no template to set mode register '{}'",
                               inst));
        continue;
      }
      Word w;
      w.rts.push_back(set_rt);
      w.cond = set_rt->cond;
      w.is_mode_set = true;
      out.words.push_back(std::move(w));
      ++result.stats.mode_sets_inserted;
    }

    // Bake the machine's actual mode state into the word condition. Vars
    // never set by the schedule read the deterministic reset contents the
    // simulators also use.
    bdd::Ref baked = w.cond;
    for (int v : mgr.support(w.cond)) {
      const std::string& name = mgr.var_name(v);
      if (name.rfind("M:", 0) != 0) continue;
      auto it = mode_state_.find(v);
      bool val;
      if (it != mode_state_.end()) {
        val = it->second;
      } else {
        auto [inst, bit] = parse_mode_var(name);
        const rtl::StorageInfo* s = base_.find_storage(inst);
        if (!s) continue;  // unknown mode register: leave the var free
        std::uint64_t reset = static_cast<std::uint64_t>(
            sim::initial_value(inst, 0, s->width));
        val = ((reset >> bit) & 1u) != 0;
        mode_state_[v] = val;
      }
      baked = mgr.land(baked, mgr.literal(v, val));
    }
    // kFalse here would mean a required mode could not be established (no
    // set template existed — already warned above); keep the raw condition.
    if (baked != bdd::kFalse) w.cond = baked;
  }

  const select::SelectedRT* synthesize_mode_set(
      const std::string& inst, const std::map<int, bool>& bits,
      CompactResult& result) {
    bdd::BddManager& mgr = *base_.mgr;
    std::int64_t value = 0;
    for (const auto& [bit, val] : bits)
      if (val) value |= (std::int64_t{1} << bit);

    for (const rtl::RTTemplate& t : base_.templates) {
      if (t.dest != inst || t.dest_kind != rtl::DestKind::ModeReg) continue;
      auto rt = std::make_unique<select::SelectedRT>();
      rt->tmpl = &t;
      rt->dest = inst;
      rt->cond = t.cond;
      if (t.value->kind == rtl::RTNode::Kind::Imm) {
        treeparse::ImmBinding b;
        b.field_bits = &t.value->imm_bits;
        b.value = value;
        rt->imms.push_back(b);
        for (std::size_t j = 0; j < b.field_bits->size(); ++j) {
          int var = mgr.find_var(fmt("I[{}]", (*b.field_bits)[j]));
          if (var < 0) continue;
          bool bit = ((static_cast<std::uint64_t>(value) >> j) & 1u) != 0;
          rt->cond = mgr.land(rt->cond, mgr.literal(var, bit));
        }
      } else if (t.value->kind == rtl::RTNode::Kind::HardConst) {
        if (t.value->value != value) continue;
      } else {
        continue;  // data-dependent mode writes are not usable here
      }
      if (rt->cond == bdd::kFalse) continue;
      rt->comment = fmt("{} := #{}  ; set mode", inst, value);
      result.program.synthesized.push_back(std::move(rt));
      return result.program.synthesized.back().get();
    }
    return nullptr;
  }

  const select::SelectionResult& sel_;
  const rtl::TemplateBase& base_;
  CompactOptions options_;
  util::DiagnosticSink& diags_;
  std::map<int, bool> mode_state_;
};

}  // namespace

CompactResult compact(const select::SelectionResult& sel,
                      const rtl::TemplateBase& base,
                      const CompactOptions& options,
                      util::DiagnosticSink& diags) {
  Compactor c(sel, base, options, diags);
  return c.run();
}

}  // namespace record::compact
