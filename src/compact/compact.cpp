#include "compact/compact.h"

#include <algorithm>
#include <map>

#include "util/strings.h"

namespace record::compact {

using util::fmt;

std::size_t CompactedProgram::word_count() const {
  std::size_t n = 0;
  for (const CompactedRegion& r : regions) n += r.words.size();
  return n;
}

namespace {

/// Required mode-register literals of a condition: variables `M:...` whose
/// phase is forced (cond implies var=b).
std::vector<std::pair<int, bool>> required_modes(bdd::BddManager& mgr,
                                                 bdd::Ref cond) {
  std::vector<std::pair<int, bool>> out;
  for (int v : mgr.support(cond)) {
    if (mgr.var_name(v).rfind("M:", 0) != 0) continue;
    bool sat_pos = mgr.land(cond, mgr.var(v)) != bdd::kFalse;
    bool sat_neg = mgr.land(cond, mgr.nvar(v)) != bdd::kFalse;
    if (sat_pos && !sat_neg) out.emplace_back(v, true);
    if (!sat_pos && sat_neg) out.emplace_back(v, false);
  }
  return out;
}

/// Parses "M:<inst>[k]" -> (inst, k).
std::pair<std::string, int> parse_mode_var(const std::string& name) {
  std::size_t lb = name.rfind('[');
  std::string inst = name.substr(2, lb - 2);
  int bit = std::stoi(name.substr(lb + 1, name.size() - lb - 2));
  return {inst, bit};
}

class Compactor {
 public:
  Compactor(const select::SelectionResult& sel, const rtl::TemplateBase& base,
            const CompactOptions& options, util::DiagnosticSink& diags)
      : sel_(sel), base_(base), options_(options), diags_(diags) {}

  CompactResult run() {
    CompactResult result;
    std::vector<Region> regions = build_regions(sel_);
    for (Region& region : regions) {
      CompactedRegion out;
      out.label = region.label;
      if (options_.enabled)
        schedule_region(region, out, result);
      else
        sequential_region(region, out, result);
      result.program.regions.push_back(std::move(out));
    }
    result.stats.words = result.program.word_count();
    return result;
  }

 private:
  void note_input(CompactResult& result, const Region& region) {
    result.stats.input_rts += region.rts.size();
  }

  void sequential_region(const Region& region, CompactedRegion& out,
                         CompactResult& result) {
    note_input(result, region);
    for (const select::SelectedRT* rt : region.rts) {
      handle_modes(rt->cond, out, result);
      Word w;
      w.rts.push_back(rt);
      w.cond = rt->cond;
      w.has_branch = rt->is_branch;
      w.branch_target = rt->branch_target;
      out.words.push_back(std::move(w));
    }
  }

  void schedule_region(const Region& region, CompactedRegion& out,
                       CompactResult& result) {
    note_input(result, region);
    const std::size_t n = region.rts.size();
    if (n == 0) return;
    bdd::BddManager& mgr = *base_.mgr;

    std::vector<int> cycle(n, -1);
    std::vector<bool> scheduled(n, false);
    std::size_t remaining = n;
    int current = 0;

    // Critical-path heights: list-scheduling priority. Deeper chains go
    // first, which lets shallow RTs (e.g. a pending accumulate) pair with
    // later compatible RTs (e.g. the next multiply) — the MPYA/MACD fusion
    // pattern.
    std::vector<int> height(n, 0);
    for (std::size_t iter = 0; iter < n; ++iter) {
      bool changed = false;
      for (const DepEdge& e : region.edges) {
        int h = height[e.to] + (e.latency > 0 ? 1 : 0);
        if (h > height[e.from]) {
          height[e.from] = h;
          changed = true;
        }
      }
      if (!changed) break;
    }
    std::vector<std::size_t> priority(n);
    for (std::size_t i = 0; i < n; ++i) priority[i] = i;
    std::stable_sort(priority.begin(), priority.end(),
                     [&height](std::size_t a, std::size_t b) {
                       return height[a] > height[b];
                     });

    auto ready = [&](std::size_t i) {
      if (scheduled[i]) return false;
      for (const DepEdge& e : region.edges) {
        if (e.to != i) continue;
        if (!scheduled[e.from]) return false;
        if (cycle[e.from] + e.latency > current) return false;
      }
      return true;
    };

    while (remaining > 0) {
      Word w;
      bool packed_any = false;
      // Non-branch candidates first, by descending critical-path height.
      for (std::size_t i : priority) {
        const select::SelectedRT* rt = region.rts[i];
        if (rt->is_branch || !ready(i)) continue;
        bdd::Ref joint = mgr.land(w.cond, rt->cond);
        if (joint == bdd::kFalse) {
          if (w.rts.empty()) {
            // An RT whose own condition is unsatisfiable (should not happen
            // after selection) must still be placed to guarantee progress.
            diags_.warning({}, "placing RT with unsatisfiable condition");
            joint = rt->cond;
          } else {
            ++result.stats.pairs_rejected_encoding;
            continue;
          }
        }
        w.rts.push_back(rt);
        w.cond = joint;
        scheduled[i] = true;
        cycle[i] = current;
        --remaining;
        packed_any = true;
      }
      // The branch goes last: only when everything else is in flight.
      for (std::size_t i = 0; i < n && remaining > 0; ++i) {
        const select::SelectedRT* rt = region.rts[i];
        if (!rt->is_branch || !ready(i)) continue;
        if (remaining != 1) continue;  // other RTs still unscheduled
        bdd::Ref joint = mgr.land(w.cond, rt->cond);
        if (joint == bdd::kFalse) {
          ++result.stats.pairs_rejected_encoding;
          continue;
        }
        w.rts.push_back(rt);
        w.cond = joint;
        w.has_branch = true;
        w.branch_target = rt->branch_target;
        scheduled[i] = true;
        cycle[i] = current;
        --remaining;
        packed_any = true;
      }
      if (!w.rts.empty()) {
        handle_modes(w.cond, out, result);
        out.words.push_back(std::move(w));
      }
      ++current;
      if (!packed_any && current > static_cast<int>(4 * n + 8)) {
        diags_.error({}, "compaction failed to make progress (cyclic "
                         "dependences?)");
        break;
      }
    }
  }

  /// Ensures the machine's mode registers satisfy `cond`'s requirements,
  /// inserting mode-set words as needed.
  void handle_modes(bdd::Ref cond, CompactedRegion& out,
                    CompactResult& result) {
    if (!options_.handle_modes) return;
    bdd::BddManager& mgr = *base_.mgr;
    std::map<std::string, std::map<int, bool>> needed;  // inst -> bit -> val
    for (const auto& [var, val] : required_modes(mgr, cond)) {
      auto it = mode_state_.find(var);
      if (it != mode_state_.end() && it->second == val) continue;
      auto [inst, bit] = parse_mode_var(mgr.var_name(var));
      needed[inst][bit] = val;
      mode_state_[var] = val;
    }
    for (const auto& [inst, bits] : needed) {
      const select::SelectedRT* set_rt = synthesize_mode_set(inst, bits,
                                                             result);
      if (!set_rt) {
        diags_.warning({}, fmt("no template to set mode register '{}'",
                               inst));
        continue;
      }
      Word w;
      w.rts.push_back(set_rt);
      w.cond = set_rt->cond;
      out.words.push_back(std::move(w));
      ++result.stats.mode_sets_inserted;
    }
  }

  const select::SelectedRT* synthesize_mode_set(
      const std::string& inst, const std::map<int, bool>& bits,
      CompactResult& result) {
    bdd::BddManager& mgr = *base_.mgr;
    std::int64_t value = 0;
    for (const auto& [bit, val] : bits)
      if (val) value |= (std::int64_t{1} << bit);

    for (const rtl::RTTemplate& t : base_.templates) {
      if (t.dest != inst || t.dest_kind != rtl::DestKind::ModeReg) continue;
      auto rt = std::make_unique<select::SelectedRT>();
      rt->tmpl = &t;
      rt->dest = inst;
      rt->cond = t.cond;
      if (t.value->kind == rtl::RTNode::Kind::Imm) {
        treeparse::ImmBinding b;
        b.field_bits = &t.value->imm_bits;
        b.value = value;
        rt->imms.push_back(b);
        for (std::size_t j = 0; j < b.field_bits->size(); ++j) {
          int var = mgr.find_var(fmt("I[{}]", (*b.field_bits)[j]));
          if (var < 0) continue;
          bool bit = ((static_cast<std::uint64_t>(value) >> j) & 1u) != 0;
          rt->cond = mgr.land(rt->cond, mgr.literal(var, bit));
        }
      } else if (t.value->kind == rtl::RTNode::Kind::HardConst) {
        if (t.value->value != value) continue;
      } else {
        continue;  // data-dependent mode writes are not usable here
      }
      if (rt->cond == bdd::kFalse) continue;
      rt->comment = fmt("{} := #{}  ; set mode", inst, value);
      result.program.synthesized.push_back(std::move(rt));
      return result.program.synthesized.back().get();
    }
    return nullptr;
  }

  const select::SelectionResult& sel_;
  const rtl::TemplateBase& base_;
  CompactOptions options_;
  util::DiagnosticSink& diags_;
  std::map<int, bool> mode_state_;
};

}  // namespace

CompactResult compact(const select::SelectionResult& sel,
                      const rtl::TemplateBase& base,
                      const CompactOptions& options,
                      util::DiagnosticSink& diags) {
  Compactor c(sel, base, options, diags);
  return c.run();
}

}  // namespace record::compact
