#include "compact/depdag.h"

#include <map>

namespace record::compact {

namespace {

void add_region_edges(Region& region) {
  // For every location: last writer and readers since that write.
  struct LocState {
    std::ptrdiff_t last_writer = -1;
    std::vector<std::size_t> readers_since_write;
  };
  std::map<std::string, LocState> locs;

  for (std::size_t i = 0; i < region.rts.size(); ++i) {
    const select::SelectedRT& rt = *region.rts[i];
    for (const std::string& r : rt.reads) {
      LocState& st = locs[r];
      if (st.last_writer >= 0)
        region.edges.push_back(
            DepEdge{static_cast<std::size_t>(st.last_writer), i, 1});  // RAW
      st.readers_since_write.push_back(i);
    }
    if (!rt.dest.empty()) {
      LocState& st = locs[rt.dest];
      if (st.last_writer >= 0)
        region.edges.push_back(
            DepEdge{static_cast<std::size_t>(st.last_writer), i, 1});  // WAW
      for (std::size_t reader : st.readers_since_write)
        if (reader != i)
          region.edges.push_back(DepEdge{reader, i, 0});  // WAR
      st.last_writer = static_cast<std::ptrdiff_t>(i);
      st.readers_since_write.clear();
    }
  }

  // A branch terminates the region: everything must be scheduled no later
  // than the branch's cycle.
  if (region.ends_with_branch && !region.rts.empty()) {
    std::size_t b = region.rts.size() - 1;
    for (std::size_t i = 0; i < b; ++i)
      region.edges.push_back(DepEdge{i, b, 0, /*control=*/true});
  }
}

}  // namespace

std::vector<Region> build_regions(const select::SelectionResult& sel) {
  std::vector<Region> regions;
  regions.emplace_back();

  auto close_region = [&regions](bool branch_end) {
    regions.back().ends_with_branch = branch_end;
    add_region_edges(regions.back());
    regions.emplace_back();
  };

  for (const select::StmtCode& sc : sel.stmts) {
    if (sc.is_label) {
      if (!regions.back().rts.empty() || !regions.back().label.empty())
        close_region(false);
      regions.back().label = sc.label;
      continue;
    }
    bool has_branch = false;
    for (const select::SelectedRT& rt : sc.rts) {
      regions.back().rts.push_back(&rt);
      if (rt.is_branch) has_branch = true;
    }
    if (has_branch) close_region(true);
  }
  // Close the trailing region.
  regions.back().ends_with_branch = false;
  add_region_edges(regions.back());
  if (regions.back().rts.empty() && regions.back().label.empty())
    regions.pop_back();
  return regions;
}

}  // namespace record::compact
