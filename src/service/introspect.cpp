#include "service/introspect.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace record::service {

namespace {

Json histogram_json(const obs::HistogramStats& h) {
  Json out = Json::object();
  out.set("count", Json(static_cast<double>(h.count)));
  out.set("sum", Json(static_cast<double>(h.sum)));
  out.set("min", Json(static_cast<double>(h.min)));
  out.set("max", Json(static_cast<double>(h.max)));
  out.set("mean", Json(h.mean));
  out.set("p50", Json(static_cast<double>(h.p50)));
  out.set("p90", Json(static_cast<double>(h.p90)));
  out.set("p99", Json(static_cast<double>(h.p99)));
  return out;
}

Json trace_response(const Json& request) {
  Json out = Json::object();
  out.set("ok", Json(true));
  out.set("cmd", Json("trace"));
  obs::Tracer& tracer = obs::Tracer::instance();
  out.set("enabled", Json(tracer.enabled()));
  std::int64_t last = request["last"].as_int(64);
  if (last < 0) last = 0;
  Json events = Json::array();
  for (const obs::TraceEvent& e :
       tracer.recent(static_cast<std::size_t>(last))) {
    Json ev = Json::object();
    ev.set("name", Json(e.name));
    ev.set("ts_us", Json(static_cast<double>(e.start_ns) / 1e3));
    ev.set("dur_us", Json(static_cast<double>(e.dur_ns) / 1e3));
    ev.set("tid", Json(static_cast<double>(e.tid)));
    ev.set("depth", Json(static_cast<double>(e.depth)));
    if (!e.args.empty()) {
      Json args = Json::object();
      for (const auto& [k, v] : e.args) args.set(k, Json(v));
      ev.set("args", std::move(args));
    }
    events.push(std::move(ev));
  }
  out.set("events", std::move(events));
  return out;
}

}  // namespace

Json stats_response(CompileService& service) {
  Json out = Json::object();
  out.set("ok", Json(true));
  out.set("cmd", Json("stats"));

  const ServiceStats s = service.stats();
  Json svc = Json::object();
  svc.set("workers", Json(static_cast<double>(service.worker_count())));
  svc.set("submitted", Json(static_cast<double>(s.submitted)));
  svc.set("completed", Json(static_cast<double>(s.completed)));
  svc.set("failed", Json(static_cast<double>(s.failed)));
  svc.set("peak_queue", Json(static_cast<double>(s.peak_queue)));
  svc.set("semantics_checked",
          Json(static_cast<double>(s.semantics_checked)));
  svc.set("semantics_failed", Json(static_cast<double>(s.semantics_failed)));
  Json queue = Json::object();
  queue.set("mean_ms", Json(s.mean_queue_ms));
  queue.set("p50_ms", Json(s.p50_queue_ms));
  queue.set("p90_ms", Json(s.p90_queue_ms));
  queue.set("p99_ms", Json(s.p99_queue_ms));
  queue.set("total_ms", Json(s.total_queue_ms));
  svc.set("queue_wait", std::move(queue));
  Json compile = Json::object();
  compile.set("mean_ms", Json(s.mean_compile_ms));
  compile.set("p50_ms", Json(s.p50_compile_ms));
  compile.set("p90_ms", Json(s.p90_compile_ms));
  compile.set("p99_ms", Json(s.p99_compile_ms));
  compile.set("total_ms", Json(s.total_compile_ms));
  svc.set("compile", std::move(compile));
  out.set("service", std::move(svc));

  const RegistryStats r = service.registry().stats();
  Json reg = Json::object();
  reg.set("entries", Json(static_cast<double>(r.entries)));
  reg.set("hits", Json(static_cast<double>(r.hits)));
  reg.set("coalesced", Json(static_cast<double>(r.coalesced)));
  reg.set("misses", Json(static_cast<double>(r.misses)));
  reg.set("disk_hits", Json(static_cast<double>(r.disk_hits)));
  reg.set("evictions", Json(static_cast<double>(r.evictions)));
  reg.set("failures", Json(static_cast<double>(r.failures)));
  out.set("registry", std::move(reg));

  // The process-wide registry: retarget phase counters, burstab cache
  // traffic, per-model compile counts ("service.compiled.<model>"), oracle
  // verdict tallies when a fuzz run shares the process.
  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  Json metrics = Json::object();
  Json counters = Json::object();
  for (const auto& [name, v] : snap.counters)
    counters.set(name, Json(static_cast<double>(v)));
  metrics.set("counters", std::move(counters));
  if (!snap.gauges.empty()) {
    Json gauges = Json::object();
    for (const auto& [name, v] : snap.gauges)
      gauges.set(name, Json(static_cast<double>(v)));
    metrics.set("gauges", std::move(gauges));
  }
  Json histograms = Json::object();
  for (const auto& [name, h] : snap.histograms)
    histograms.set(name, histogram_json(h));
  metrics.set("histograms", std::move(histograms));
  out.set("metrics", std::move(metrics));
  return out;
}

std::optional<Json> handle_introspection(const Json& request,
                                         CompileService& service) {
  if (!request.is_object() || !request.contains("cmd")) return std::nullopt;
  const std::string& cmd = request["cmd"].as_string();
  if (cmd == "stats") return stats_response(service);
  if (cmd == "trace") return trace_response(request);
  Json out = Json::object();
  out.set("ok", Json(false));
  out.set("error", Json("unknown cmd '" + cmd + "' (try stats, trace)"));
  return out;
}

}  // namespace record::service
