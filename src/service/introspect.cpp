#include "service/introspect.h"

#include "core/compiler.h"
#include "ir/kernel_lang.h"
#include "obs/coverage.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/diagnostics.h"
#include "util/failpoint.h"

namespace record::service {

namespace {

Json histogram_json(const obs::HistogramStats& h) {
  Json out = Json::object();
  out.set("count", Json(static_cast<double>(h.count)));
  out.set("sum", Json(static_cast<double>(h.sum)));
  out.set("min", Json(static_cast<double>(h.min)));
  out.set("max", Json(static_cast<double>(h.max)));
  out.set("mean", Json(h.mean));
  out.set("p50", Json(static_cast<double>(h.p50)));
  out.set("p90", Json(static_cast<double>(h.p90)));
  out.set("p99", Json(static_cast<double>(h.p99)));
  // Raw distribution: occupied buckets with their value ranges, so
  // consumers can rebuild the full histogram (and recompute any quantile)
  // instead of trusting the three shipped percentiles.
  Json buckets = Json::array();
  for (const obs::HistogramBucket& b : h.buckets) {
    Json jb = Json::object();
    jb.set("lo", Json(static_cast<double>(b.lo)));
    jb.set("hi", Json(static_cast<double>(b.hi)));
    jb.set("count", Json(static_cast<double>(b.count)));
    buckets.push(std::move(jb));
  }
  out.set("buckets", std::move(buckets));
  return out;
}

/// Ratio pair {"covered": N, "total": M} (total 0 = denominator unknown).
Json ratio_json(std::size_t covered, std::uint64_t total) {
  Json out = Json::object();
  out.set("covered", Json(static_cast<double>(covered)));
  out.set("total", Json(static_cast<double>(total)));
  return out;
}

Json coverage_json(const obs::CoverageSnapshot& s) {
  Json out = Json::object();
  out.set("target", Json(s.target));
  out.set("rules_matched",
          ratio_json(s.rules_matched_covered(), s.rules_total));
  out.set("rules_chosen", ratio_json(s.rules_chosen_covered(), s.rules_total));
  out.set("states", ratio_json(s.states_covered(), s.states_total));
  out.set("transitions",
          ratio_json(s.transitions_covered(), s.transitions_total));
  out.set("cold_transitions",
          Json(static_cast<double>(s.counts.cold_transitions)));
  Json variants = Json::object();
  for (std::size_t v = 0; v < obs::kCoverageVariantCount; ++v)
    variants.set(
        std::string(to_string(static_cast<obs::CoverageVariant>(v))),
        Json(static_cast<double>(s.counts.variants[v])));
  out.set("variants", std::move(variants));
  Json uncovered = Json::array();
  for (int rid : s.uncovered_rules()) {
    Json r = Json::object();
    r.set("rule", Json(static_cast<double>(rid)));
    if (static_cast<std::size_t>(rid) < s.rule_names.size())
      r.set("name", Json(s.rule_names[static_cast<std::size_t>(rid)]));
    uncovered.push(std::move(r));
  }
  out.set("uncovered_rules", std::move(uncovered));
  return out;
}

Json explain_response(const Json& request, CompileService& service) {
  Json out = Json::object();
  out.set("cmd", Json("explain"));
  const std::string& model = request["model"].as_string();
  const std::string& hdl = request["hdl"].as_string();
  const std::string& kernel = request["kernel"].as_string();
  if ((model.empty() && hdl.empty()) || kernel.empty()) {
    out.set("ok", Json(false));
    out.set("error",
            Json("explain needs \"kernel\" plus \"model\" or \"hdl\""));
    return out;
  }
  util::DiagnosticSink diags;
  std::shared_ptr<const core::RetargetResult> target =
      model.empty() ? service.registry().get(hdl, diags)
                    : service.registry().get_model(model, diags);
  if (!target) {
    out.set("ok", Json(false));
    std::string err = diags.first_error();
    out.set("error", Json(err.empty() ? "retargeting failed" : err));
    return out;
  }
  std::optional<ir::Program> program = ir::parse_kernel(kernel, diags);
  if (!program) {
    out.set("ok", Json(false));
    std::string err = diags.first_error();
    out.set("error", Json(err.empty() ? "kernel parse failed" : err));
    return out;
  }
  select::ExplainSink sink;
  core::CompileOptions options;
  options.explain = &sink;
  core::Compiler compiler(target);
  std::optional<core::CompileResult> compiled =
      compiler.compile(*program, options, diags);
  if (!compiled) {
    out.set("ok", Json(false));
    std::string err = diags.first_error();
    out.set("error", Json(err.empty() ? "compilation failed" : err));
    return out;
  }
  out.set("ok", Json(true));
  out.set("processor", Json(target->processor));
  Json stmts = Json::array();
  for (const select::StmtExplain& ex : sink.stmts) {
    Json js = Json::object();
    js.set("source", Json(ex.source));
    if (!ex.subject.empty()) js.set("subject", Json(ex.subject));
    js.set("cost", Json(static_cast<double>(ex.cost)));
    if (ex.promoted) js.set("promoted", Json(true));
    Json steps = Json::array();
    for (const select::ExplainStep& st : ex.steps) {
      Json jstep = Json::object();
      jstep.set("rule", Json(static_cast<double>(st.rule)));
      jstep.set("rule_text", Json(st.rule_text));
      jstep.set("nonterminal", Json(st.nonterminal));
      jstep.set("node", Json(st.node));
      jstep.set("cost", Json(static_cast<double>(st.cost)));
      if (st.is_chain) jstep.set("chain", Json(true));
      if (!st.imms.empty()) {
        Json imms = Json::array();
        for (const select::ExplainImm& imm : st.imms) {
          Json ji = Json::object();
          ji.set("width", Json(static_cast<double>(imm.width)));
          ji.set("value", Json(static_cast<double>(imm.value)));
          ji.set("fits", Json(imm.fits));
          imms.push(std::move(ji));
        }
        jstep.set("imms", std::move(imms));
      }
      if (!st.alternatives.empty()) {
        Json alts = Json::array();
        for (const select::ExplainAlternative& alt : st.alternatives) {
          Json ja = Json::object();
          ja.set("rule", Json(static_cast<double>(alt.rule)));
          ja.set("rule_text", Json(alt.rule_text));
          ja.set("nonterminal", Json(alt.nonterminal));
          ja.set("cost", Json(static_cast<double>(alt.cost)));
          alts.push(std::move(ja));
        }
        jstep.set("alternatives", std::move(alts));
      }
      steps.push(std::move(jstep));
    }
    js.set("steps", std::move(steps));
    stmts.push(std::move(js));
  }
  out.set("statements", std::move(stmts));
  return out;
}

Json trace_response(const Json& request) {
  Json out = Json::object();
  out.set("ok", Json(true));
  out.set("cmd", Json("trace"));
  obs::Tracer& tracer = obs::Tracer::instance();
  out.set("enabled", Json(tracer.enabled()));
  std::int64_t last = request["last"].as_int(64);
  if (last < 0) last = 0;
  Json events = Json::array();
  for (const obs::TraceEvent& e :
       tracer.recent(static_cast<std::size_t>(last))) {
    Json ev = Json::object();
    ev.set("name", Json(e.name));
    ev.set("ts_us", Json(static_cast<double>(e.start_ns) / 1e3));
    ev.set("dur_us", Json(static_cast<double>(e.dur_ns) / 1e3));
    ev.set("tid", Json(static_cast<double>(e.tid)));
    ev.set("depth", Json(static_cast<double>(e.depth)));
    if (!e.args.empty()) {
      Json args = Json::object();
      for (const auto& [k, v] : e.args) args.set(k, Json(v));
      ev.set("args", std::move(args));
    }
    events.push(std::move(ev));
  }
  out.set("events", std::move(events));
  return out;
}

// {"cmd":"failpoint"} lists the armed sites; adding "name" and "spec" arms
// (or, with spec "off"/empty, disarms) that site first. The response always
// carries the post-change listing so an operator sees the effect in-line.
Json failpoint_response(const Json& request) {
  Json out = Json::object();
  out.set("cmd", Json("failpoint"));
  const std::string& name = request["name"].as_string();
  if (!name.empty()) {
    std::string spec = request["spec"].as_string();
    if (spec.empty()) spec = "off";
    std::string error;
    if (!util::failpoint_arm(name, spec, &error)) {
      out.set("ok", Json(false));
      out.set("error", Json("failpoint '" + name + "': " + error));
      return out;
    }
  }
  out.set("ok", Json(true));
  Json list = Json::array();
  for (const util::FailpointInfo& fp : util::failpoint_list()) {
    Json jf = Json::object();
    jf.set("name", Json(fp.name));
    jf.set("spec", Json(fp.spec));
    jf.set("hits", Json(static_cast<double>(fp.hits)));
    jf.set("fires", Json(static_cast<double>(fp.fires)));
    list.push(std::move(jf));
  }
  out.set("failpoints", std::move(list));
  return out;
}

}  // namespace

Json stats_response(CompileService& service) {
  Json out = Json::object();
  out.set("ok", Json(true));
  out.set("cmd", Json("stats"));

  const ServiceStats s = service.stats();
  Json svc = Json::object();
  svc.set("workers", Json(static_cast<double>(service.worker_count())));
  svc.set("submitted", Json(static_cast<double>(s.submitted)));
  svc.set("completed", Json(static_cast<double>(s.completed)));
  svc.set("failed", Json(static_cast<double>(s.failed)));
  svc.set("peak_queue", Json(static_cast<double>(s.peak_queue)));
  svc.set("semantics_checked",
          Json(static_cast<double>(s.semantics_checked)));
  svc.set("semantics_failed", Json(static_cast<double>(s.semantics_failed)));
  svc.set("deadline_exceeded",
          Json(static_cast<double>(s.deadline_exceeded)));
  Json queue = Json::object();
  queue.set("mean_ms", Json(s.mean_queue_ms));
  queue.set("p50_ms", Json(s.p50_queue_ms));
  queue.set("p90_ms", Json(s.p90_queue_ms));
  queue.set("p99_ms", Json(s.p99_queue_ms));
  queue.set("total_ms", Json(s.total_queue_ms));
  svc.set("queue_wait", std::move(queue));
  Json compile = Json::object();
  compile.set("mean_ms", Json(s.mean_compile_ms));
  compile.set("p50_ms", Json(s.p50_compile_ms));
  compile.set("p90_ms", Json(s.p90_compile_ms));
  compile.set("p99_ms", Json(s.p99_compile_ms));
  compile.set("total_ms", Json(s.total_compile_ms));
  svc.set("compile", std::move(compile));
  out.set("service", std::move(svc));

  const RegistryStats r = service.registry().stats();
  Json reg = Json::object();
  reg.set("entries", Json(static_cast<double>(r.entries)));
  reg.set("hits", Json(static_cast<double>(r.hits)));
  reg.set("coalesced", Json(static_cast<double>(r.coalesced)));
  reg.set("misses", Json(static_cast<double>(r.misses)));
  reg.set("disk_hits", Json(static_cast<double>(r.disk_hits)));
  reg.set("evictions", Json(static_cast<double>(r.evictions)));
  reg.set("failures", Json(static_cast<double>(r.failures)));
  out.set("registry", std::move(reg));

  // The process-wide registry: retarget phase counters, burstab cache
  // traffic, per-model compile counts ("service.compiled.<model>"), oracle
  // verdict tallies when a fuzz run shares the process.
  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  Json metrics = Json::object();
  Json counters = Json::object();
  for (const auto& [name, v] : snap.counters)
    counters.set(name, Json(static_cast<double>(v)));
  metrics.set("counters", std::move(counters));
  if (!snap.gauges.empty()) {
    Json gauges = Json::object();
    for (const auto& [name, v] : snap.gauges)
      gauges.set(name, Json(static_cast<double>(v)));
    metrics.set("gauges", std::move(gauges));
  }
  Json histograms = Json::object();
  for (const auto& [name, h] : snap.histograms)
    histograms.set(name, histogram_json(h));
  metrics.set("histograms", std::move(histograms));
  out.set("metrics", std::move(metrics));

  // Per-model selection coverage (present whenever coverage is enabled and
  // at least one compile has attached a map).
  const std::vector<obs::CoverageSnapshot> cov =
      obs::coverage().snapshot_all();
  if (!cov.empty()) {
    Json coverage = Json::array();
    for (const obs::CoverageSnapshot& s : cov)
      coverage.push(coverage_json(s));
    out.set("coverage", std::move(coverage));
  }
  return out;
}

std::optional<Json> handle_introspection(const Json& request,
                                         CompileService& service) {
  if (!request.is_object() || !request.contains("cmd")) return std::nullopt;
  const std::string& cmd = request["cmd"].as_string();
  if (cmd == "stats") return stats_response(service);
  if (cmd == "trace") return trace_response(request);
  if (cmd == "explain") return explain_response(request, service);
  if (cmd == "failpoint") return failpoint_response(request);
  Json out = Json::object();
  out.set("ok", Json(false));
  out.set("error",
          Json("unknown cmd '" + cmd +
               "' (try stats, trace, explain, failpoint)"));
  return out;
}

}  // namespace record::service
