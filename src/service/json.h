// Minimal JSON support for the compile service's wire format.
//
// The recordd tool speaks JSON-lines (one request/response object per line),
// and the service benchmarks emit machine-readable JSON. This is a small
// dependency-free value type + recursive-descent parser covering exactly the
// JSON subset those need: null, booleans, doubles, strings (with \uXXXX
// escapes decoded to UTF-8), arrays and objects. Numbers are stored as
// double, which is exact for the integer ranges the protocol carries.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace record::service {

class Json {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Json() = default;  // null
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(double n) : kind_(Kind::Number), num_(n) {}
  Json(int n) : kind_(Kind::Number), num_(n) {}
  Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
  Json(const char* s) : kind_(Kind::String), str_(s) {}

  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  /// Parses one JSON document (leading/trailing whitespace allowed).
  /// nullopt on malformed input; `error` (if given) receives a message with
  /// the byte offset.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text,
                                                 std::string* error = nullptr);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }

  /// Typed accessors with defaults (never throw; wrong kind = default).
  [[nodiscard]] bool as_bool(bool dflt = false) const;
  [[nodiscard]] double as_number(double dflt = 0.0) const;
  [[nodiscard]] std::int64_t as_int(std::int64_t dflt = 0) const;
  [[nodiscard]] const std::string& as_string() const;  // "" for non-strings

  /// Object member by key; a shared null instance if absent or not an
  /// object — so lookups chain: j["options"]["engine"].as_string().
  [[nodiscard]] const Json& operator[](std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const;

  /// Array element; shared null if out of range.
  [[nodiscard]] const Json& at(std::size_t index) const;
  [[nodiscard]] std::size_t size() const;  // array/object arity, else 0

  /// Mutation (building responses).
  void set(std::string key, Json value);  // makes *this an object
  void push(Json value);                  // makes *this an array

  /// Compact single-line serialisation (stable member order = insertion
  /// order; suitable for JSON-lines).
  [[nodiscard]] std::string dump() const;

  /// `s` as a quoted JSON string literal.
  [[nodiscard]] static std::string quote(std::string_view s);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;                               // Array
  std::vector<std::pair<std::string, Json>> members_;     // Object
};

}  // namespace record::service
