// Concurrent compile service: a fixed worker pool draining a bounded job
// queue, compiling IR/kernel programs against targets served by a shared
// single-flight TargetRegistry.
//
//                submit() / compile_batch()
//                          │ (bounded queue; submit blocks when full)
//                          ▼
//        ┌───────────── CompileService ─────────────┐
//        │  worker 0   worker 1   ...   worker N-1  │   one job =
//        │     │          │                 │       │   resolve target
//        │     └──────────┴───────┬─────────┘       │   -> parse kernel
//        │                        ▼                 │   -> Compiler::compile
//        │                 TargetRegistry           │
//        │        (LRU + single-flight retarget)    │
//        │                        │                 │
//        │                        ▼                 │
//        │            burstab::TargetCache          │
//        │            (persistent, optional)        │
//        └───────────────────────────────────────────┘
//
// Concurrency contract: each job runs with its own DiagnosticSink and its
// own Compiler/CodeSelector; all cross-job shared state (RetargetResult,
// BddManager, TargetTables) is immutable or internally synchronised — see
// core/record.h. Results are futures, so callers may pipeline submissions
// against collection.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/compiler.h"
#include "core/record.h"
#include "ir/program.h"
#include "obs/metrics.h"
#include "service/registry.h"
#include "util/timer.h"

namespace record::service {

/// One compile request. The target is named by `model` (built-in) or, when
/// `model` is empty, by raw HDL source in `hdl`. The program comes from
/// `program` (pre-built IR) or, when null, from kernel-language text in
/// `kernel`; with neither, the job is retarget-only and succeeds with an
/// empty listing (useful to pre-warm the registry or probe a model).
struct CompileJob {
  std::string tag;  // echoed in the result for client-side correlation
  std::string model;
  std::string hdl;
  std::string kernel;
  std::shared_ptr<const ir::Program> program;
  core::CompileOptions options;
  /// Per-request retargeting options; nullopt = the registry's defaults.
  std::optional<core::RetargetOptions> retarget;
  /// Materialise JobResult::listing. Off, the listing stays derivable from
  /// JobResult::compiled without paying the formatting cost per job.
  bool want_listing = true;
  /// After a successful compile, run the semantic oracle (sim/check.h):
  /// execute the emitted words on the RT-level simulator and compare the
  /// final machine state against the IR reference evaluator. Divergence
  /// (or a decoder rejection) fails the job.
  bool check_semantics = false;
  /// Wall-clock budget in milliseconds from submission, queue wait included;
  /// 0 = no deadline. An expired job returns a structured deadline_exceeded
  /// failure (with a retry_after_ms backoff hint) instead of occupying a
  /// worker: the check runs at dequeue and between pipeline phases.
  std::uint64_t deadline_ms = 0;
};

struct JobTimes {
  double queue_ms = 0;     // submission -> a worker picked the job up
  double target_ms = 0;    // registry resolution (0 when hot and uncontended)
  double frontend_ms = 0;  // kernel-language parsing
  double compile_ms = 0;   // selection + spills + compaction + encoding
};

/// Outcome of one job. Move-only (carries the CompileResult artifacts).
struct JobResult {
  bool ok = false;
  std::string tag;
  std::string processor;
  std::string error;        // first error when !ok
  std::string diagnostics;  // full diagnostic dump of the job's sink
  std::size_t code_size = 0;
  std::size_t rts = 0;
  std::string listing;
  /// Semantic-oracle outcome (CompileJob::check_semantics): whether state
  /// was actually compared, and why not when it was skipped.
  bool semantics_checked = false;
  std::string semantics_skipped;
  /// The job's deadline expired (in the queue or between pipeline phases);
  /// `error` then starts with "deadline_exceeded".
  bool deadline_exceeded = false;
  /// Backoff hint (milliseconds) on deadline expiry and shutdown/overload
  /// rejections; 0 = no hint. Clients that wait this long before retrying
  /// arrive when the current backlog has plausibly drained.
  std::uint64_t retry_after_ms = 0;
  JobTimes times;
  /// Keeps the target alive for consumers of `compiled` (whose selected RTs
  /// point into the target's template base) even after registry eviction.
  std::shared_ptr<const core::RetargetResult> target;
  std::optional<core::CompileResult> compiled;
};

/// Aggregate service counters plus a latency summary. The latency figures
/// are derived at stats() time from two per-service obs::Histogram instances
/// (nanosecond buckets, wait-free recording on the worker path), so
/// accumulation is TSan-clean by construction; `total_*` stay for
/// compatibility with older consumers (recordd --stats) and are the
/// histogram sums.
struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;        // completed with !ok
  std::size_t peak_queue = 0;    // high-water mark of the request queue
  std::size_t semantics_checked = 0;   // jobs whose state comparison ran
  std::size_t semantics_failed = 0;    // ... and diverged / was rejected
  std::size_t deadline_exceeded = 0;   // jobs whose deadline expired
  double total_queue_ms = 0;     // = sum of the queue-wait histogram
  double total_compile_ms = 0;   // = sum of the compile-time histogram
  double mean_queue_ms = 0;
  double p50_queue_ms = 0;
  double p90_queue_ms = 0;
  double p99_queue_ms = 0;
  double mean_compile_ms = 0;
  double p50_compile_ms = 0;
  double p90_compile_ms = 0;
  double p99_compile_ms = 0;
};

class CompileService {
 public:
  struct Options {
    /// Worker threads; 0 = std::thread::hardware_concurrency (min 1).
    std::size_t workers = 0;
    /// Maximum queued (not yet running) jobs; submit() blocks beyond this.
    std::size_t queue_capacity = 256;
    TargetRegistry::Options registry;
  };

  CompileService() : CompileService(Options{}) {}
  explicit CompileService(Options options);
  ~CompileService();  // shutdown(): drains the queue, then joins workers

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// Enqueues one job; blocks while the queue is at capacity. After
  /// shutdown() the returned future holds an immediate "service stopped"
  /// failure.
  [[nodiscard]] std::future<JobResult> submit(CompileJob job);

  /// Completion callback for the async submission paths; runs on the worker
  /// thread that finished the job, so it must be cheap and non-blocking
  /// (event-loop callers hand the result to their own wakeup mechanism).
  using Callback = std::function<void(JobResult)>;

  /// Like submit(), but delivers the result through `done` instead of a
  /// future. Blocks while the queue is at capacity; after shutdown() the
  /// callback fires inline with a "service stopped" failure.
  void submit_async(CompileJob job, Callback done);

  /// Non-blocking submit_async: returns false — leaving `job` and `done`
  /// untouched — when the queue is at capacity, so an event loop can park
  /// the request and retry when a completion frees a slot. Backpressure
  /// rejections are counted under "service.queue_full"; when `retry_after_ms`
  /// is non-null a rejection fills it with the backoff hint
  /// (suggested_backoff_ms) the caller should forward to its client.
  [[nodiscard]] bool try_submit_async(CompileJob& job, Callback& done,
                                      std::uint64_t* retry_after_ms = nullptr);

  /// Submits all jobs and waits; results are in submission order.
  [[nodiscard]] std::vector<JobResult> compile_batch(
      std::vector<CompileJob> jobs);

  /// Stops accepting jobs, lets the workers drain what is queued, joins.
  /// Idempotent; also run by the destructor.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;

  /// Backoff hint for rejected/expired work: roughly how long the current
  /// backlog needs to drain (queue depth x mean compile time / workers),
  /// clamped to [1, 1000] ms. Deterministic given the queue state, so load
  /// shedding under saturation is reproducible.
  [[nodiscard]] std::uint64_t suggested_backoff_ms() const;

  /// Raw latency histograms backing the stats() summary (queue wait and
  /// compile time, nanoseconds) — recordd's stats command serves their full
  /// percentile spread from here.
  [[nodiscard]] const obs::Histogram& queue_histogram() const {
    return queue_ns_;
  }
  [[nodiscard]] const obs::Histogram& compile_histogram() const {
    return compile_ns_;
  }

  [[nodiscard]] TargetRegistry& registry() { return registry_; }
  [[nodiscard]] std::size_t worker_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return workers_.size();
  }

  /// The synchronous job core every worker runs (target resolution, kernel
  /// parsing, compilation). Public so sequential baselines — tests, the
  /// throughput bench's 1-worker reference — share the exact code path.
  /// `times.queue_ms` is left zero. `scratch` (optional) is the caller's
  /// reusable selection scratch; pool workers pass their per-thread one.
  /// `deadline` (default-constructed = none) is the job's cancellation
  /// token: it is checked between pipeline phases and an expired job stops
  /// with a structured deadline_exceeded failure.
  [[nodiscard]] static JobResult run_job(
      const CompileJob& job, TargetRegistry& registry,
      select::SelectScratch* scratch = nullptr,
      std::chrono::steady_clock::time_point deadline = {});

 private:
  /// suggested_backoff_ms with the queue depth already sampled; lock-free
  /// (the histogram is atomic), so callers may hold mu_.
  [[nodiscard]] std::uint64_t backoff_ms(std::size_t queue_depth) const;

  struct Pending {
    CompileJob job;
    std::promise<JobResult> promise;  // used when callback is empty
    Callback callback;                // async path: invoked on the worker
    util::Timer enqueued;
    /// Absolute deadline from CompileJob::deadline_ms; epoch = none.
    std::chrono::steady_clock::time_point deadline{};
  };

  void worker_loop();

  Options options_;
  TargetRegistry registry_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  ServiceStats stats_;  // counter fields only; latency derives from below

  /// Per-service latency distributions (wait-free recording; see
  /// obs/metrics.h). Per-instance rather than process-global so concurrent
  /// services — tests, the oracle's throwaway pools — don't pollute each
  /// other's percentiles; the process-wide obs::metrics() registry gets the
  /// same recordings under "service.*" for daemon-level introspection.
  obs::Histogram queue_ns_;
  obs::Histogram compile_ns_;

  /// Resolved worker count (Options::workers with 0 expanded); workers_
  /// itself empties on shutdown, but the backoff math still needs it.
  std::size_t worker_n_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace record::service
