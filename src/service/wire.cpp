#include "service/wire.h"

#include <utility>

#include "util/strings.h"

namespace record::service {

CompileJob job_from_request(const Json& request, bool default_listing) {
  CompileJob job;
  job.tag = request["tag"].as_string();
  job.model = request["model"].as_string();
  job.hdl = request["hdl"].as_string();
  job.kernel = request["source"].as_string();
  const Json& options = request["options"];
  const std::string& engine = options["engine"].as_string();
  if (engine == "tables") job.options.engine = select::Engine::kTables;
  else if (engine == "interpreter")
    job.options.engine = select::Engine::kInterpreter;
  job.options.compact.enabled = options["compact"].as_bool(true);
  job.options.insert_spills = options["spills"].as_bool(true);
  job.want_listing = options["listing"].as_bool(default_listing);
  const std::int64_t deadline_ms = options["deadline_ms"].as_int(0);
  if (deadline_ms > 0) job.deadline_ms = static_cast<std::uint64_t>(deadline_ms);
  return job;
}

Json response_from_result(const JobResult& result) {
  Json out = Json::object();
  if (!result.tag.empty()) out.set("tag", Json(result.tag));
  out.set("ok", Json(result.ok));
  if (!result.ok) {
    out.set("error", Json(result.error));
    if (result.deadline_exceeded) out.set("deadline_exceeded", Json(true));
    if (result.retry_after_ms > 0)
      out.set("retry_after_ms", Json(double(result.retry_after_ms)));
    return out;
  }
  out.set("processor", Json(result.processor));
  out.set("code_size", Json(double(result.code_size)));
  out.set("rts", Json(double(result.rts)));
  Json times = Json::object();
  times.set("queue_ms", Json(result.times.queue_ms));
  times.set("target_ms", Json(result.times.target_ms));
  times.set("frontend_ms", Json(result.times.frontend_ms));
  times.set("compile_ms", Json(result.times.compile_ms));
  out.set("times", std::move(times));
  if (!result.listing.empty()) {
    Json lines = Json::array();
    for (const std::string& line : util::split(result.listing, '\n'))
      if (!line.empty()) lines.push(Json(line));
    out.set("listing", std::move(lines));
  }
  return out;
}

std::string bad_request_line(std::size_t lineno, std::string_view error) {
  Json bad = Json::object();
  bad.set("ok", Json(false));
  bad.set("error",
          Json(util::fmt("line {}: bad request: {}", lineno,
                         error.empty() ? std::string_view("not an object")
                                       : error)));
  return bad.dump();
}

}  // namespace record::service
