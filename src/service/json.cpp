#include "service/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace record::service {

namespace {

const Json kNull;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(std::string_view msg) {
    if (error.empty())
      error = util::fmt("{} at offset {}", msg, pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r'))
      ++pos;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return fail("invalid literal");
    pos += word.size();
    return true;
  }

  bool hex_quad(unsigned& cp) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    cp = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text[pos++];
      cp <<= 4;
      if (h >= '0' && h <= '9') cp |= unsigned(h - '0');
      else if (h >= 'a' && h <= 'f') cp |= unsigned(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') cp |= unsigned(h - 'A' + 10);
      else return fail("bad \\u escape");
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos >= text.size() || text[pos] != '"')
      return fail("expected string");
    ++pos;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) return fail("unterminated escape");
      char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!hex_quad(cp)) return false;
          // Combine UTF-16 surrogate pairs into the real code point: a high
          // surrogate must be chased by \uDC00..\uDFFF, and a surrogate half
          // on its own is invalid (encoding it raw would emit CESU-8 bytes
          // that append_json_quoted then re-escapes into mojibake on echo).
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos + 2 > text.size() || text[pos] != '\\' ||
                text[pos + 1] != 'u')
              return fail("unpaired high surrogate");
            pos += 2;
            unsigned lo = 0;
            if (!hex_quad(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF)
              return fail("unpaired high surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          // UTF-8 encode (1-4 bytes).
          if (cp < 0x80) {
            out.push_back(char(cp));
          } else if (cp < 0x800) {
            out.push_back(char(0xC0 | (cp >> 6)));
            out.push_back(char(0x80 | (cp & 0x3F)));
          } else if (cp < 0x10000) {
            out.push_back(char(0xE0 | (cp >> 12)));
            out.push_back(char(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(char(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(char(0xF0 | (cp >> 18)));
            out.push_back(char(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(char(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(char(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Json& out, int depth) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    char c = text[pos];
    if (c == 'n') { if (!literal("null")) return false; out = Json(); return true; }
    if (c == 't') { if (!literal("true")) return false; out = Json(true); return true; }
    if (c == 'f') { if (!literal("false")) return false; out = Json(false); return true; }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Json(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos;
      out = Json::array();
      skip_ws();
      if (pos < text.size() && text[pos] == ']') { ++pos; return true; }
      for (;;) {
        Json item;
        if (!parse_value(item, depth + 1)) return false;
        out.push(std::move(item));
        skip_ws();
        if (pos >= text.size()) return fail("unterminated array");
        if (text[pos] == ',') { ++pos; continue; }
        if (text[pos] == ']') { ++pos; return true; }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos;
      out = Json::object();
      skip_ws();
      if (pos < text.size() && text[pos] == '}') { ++pos; return true; }
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (pos >= text.size() || text[pos] != ':')
          return fail("expected ':'");
        ++pos;
        Json value;
        if (!parse_value(value, depth + 1)) return false;
        out.set(std::move(key), std::move(value));
        skip_ws();
        if (pos >= text.size()) return fail("unterminated object");
        if (text[pos] == ',') { ++pos; continue; }
        if (text[pos] == '}') { ++pos; return true; }
        return fail("expected ',' or '}'");
      }
    }
    // number
    std::size_t start = pos;
    if (text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-'))
      ++pos;
    if (pos == start) return fail("unexpected character");
    std::string num(text.substr(start, pos - start));
    char* end = nullptr;
    double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return fail("malformed number");
    out = Json(v);
    return true;
  }
};

}  // namespace

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  Parser p{text, 0, {}};
  Json out;
  if (!p.parse_value(out, 0)) {
    if (error) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error) *error = util::fmt("trailing garbage at offset {}", p.pos);
    return std::nullopt;
  }
  return out;
}

bool Json::as_bool(bool dflt) const {
  return kind_ == Kind::Bool ? bool_ : dflt;
}

double Json::as_number(double dflt) const {
  return kind_ == Kind::Number ? num_ : dflt;
}

namespace {

/// True when the double can be cast to int64 without UB (in range, not NaN).
bool fits_int64(double v) {
  return v >= -9223372036854775808.0 && v < 9223372036854775808.0;
}

}  // namespace

std::int64_t Json::as_int(std::int64_t dflt) const {
  if (kind_ != Kind::Number || !fits_int64(num_)) return dflt;
  return static_cast<std::int64_t>(num_);
}

const std::string& Json::as_string() const {
  static const std::string empty;
  return kind_ == Kind::String ? str_ : empty;
}

const Json& Json::operator[](std::string_view key) const {
  if (kind_ == Kind::Object)
    for (const auto& [k, v] : members_)
      if (k == key) return v;
  return kNull;
}

bool Json::contains(std::string_view key) const {
  if (kind_ != Kind::Object) return false;
  for (const auto& [k, v] : members_)
    if (k == key) return true;
  return false;
}

const Json& Json::at(std::size_t index) const {
  if (kind_ == Kind::Array && index < items_.size()) return items_[index];
  return kNull;
}

std::size_t Json::size() const {
  if (kind_ == Kind::Array) return items_.size();
  if (kind_ == Kind::Object) return members_.size();
  return 0;
}

void Json::set(std::string key, Json value) {
  if (kind_ != Kind::Object) *this = object();
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

void Json::push(Json value) {
  if (kind_ != Kind::Array) *this = array();
  items_.push_back(std::move(value));
}

std::string Json::quote(std::string_view s) {
  // util::append_json_quoted guarantees valid-UTF-8 output even for hostile
  // inputs (generated model names can carry arbitrary bytes): stray bytes
  // that do not form a well-formed UTF-8 sequence are escaped as \u00XX
  // instead of being copied raw, which would make strict consumers (for
  // example python's json.loads over a UTF-8 decoded stream) reject the
  // whole document.
  std::string out;
  out.reserve(s.size() + 2);
  util::append_json_quoted(out, s);
  return out;
}

std::string Json::dump() const {
  switch (kind_) {
    case Kind::Null: return "null";
    case Kind::Bool: return bool_ ? "true" : "false";
    case Kind::Number: {
      // Integers (the common case on the wire) print without a fraction.
      if (fits_int64(num_) &&
          num_ == static_cast<double>(static_cast<std::int64_t>(num_))) {
        return std::to_string(static_cast<std::int64_t>(num_));
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", num_);
      return buf;
    }
    case Kind::String: return quote(str_);
    case Kind::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out.push_back(',');
        out += items_[i].dump();
      }
      out.push_back(']');
      return out;
    }
    case Kind::Object: {
      std::string out = "{";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out.push_back(',');
        out += quote(members_[i].first);
        out.push_back(':');
        out += members_[i].second.dump();
      }
      out.push_back('}');
      return out;
    }
  }
  return "null";
}

}  // namespace record::service
