// JSON-lines wire codec for the compile service: request -> CompileJob and
// JobResult -> response. One implementation shared by every front end (the
// stdio daemon loop in examples/recordd.cpp and the socket server in
// src/net/) so a job compiled over a socket answers byte-identically to the
// same job compiled over stdin.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "service/json.h"
#include "service/service.h"

namespace record::service {

/// Decodes one request object (see the protocol comment in
/// examples/recordd.cpp) into a CompileJob. Unknown fields are ignored;
/// `default_listing` is the daemon-wide --listing default applied when the
/// request carries no "options.listing".
[[nodiscard]] CompileJob job_from_request(const Json& request,
                                          bool default_listing);

/// Encodes one JobResult as the response object: {"tag", "ok", "processor",
/// "code_size", "rts", "times", "listing"?} on success, {"tag", "ok":false,
/// "error", "deadline_exceeded"?, "retry_after_ms"?} on failure.
[[nodiscard]] Json response_from_result(const JobResult& result);

/// The rendered {"ok":false,"error":"line N: bad request: ..."} line for an
/// input line that did not parse as a JSON object.
[[nodiscard]] std::string bad_request_line(std::size_t lineno,
                                           std::string_view error);

}  // namespace record::service
