#include "service/service.h"

#include <algorithm>
#include <new>
#include <utility>

#include "ir/kernel_lang.h"
#include "obs/trace.h"
#include "sim/check.h"
#include "util/failpoint.h"

namespace record::service {

namespace {

/// Absolute deadline for a job; epoch (default-constructed) = none. Computed
/// at submission so queue wait counts against the budget.
std::chrono::steady_clock::time_point deadline_of(const CompileJob& job) {
  if (job.deadline_ms == 0) return {};
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(job.deadline_ms);
}

bool expired(std::chrono::steady_clock::time_point deadline) {
  return deadline != std::chrono::steady_clock::time_point{} &&
         std::chrono::steady_clock::now() >= deadline;
}

}  // namespace

CompileService::CompileService(Options options)
    : options_(std::move(options)), registry_(options_.registry) {
  std::size_t n = options_.workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  worker_n_ = n;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

CompileService::~CompileService() { shutdown(); }

void CompileService::shutdown() {
  // The pool is claimed under the lock so concurrent shutdown calls (e.g.
  // the destructor racing an explicit shutdown) never double-join; joining
  // happens unlocked because workers take mu_ to drain the queue.
  std::vector<std::thread> claimed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    claimed.swap(workers_);
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& w : claimed)
    if (w.joinable()) w.join();
}

std::future<JobResult> CompileService::submit(CompileJob job) {
  std::promise<JobResult> promise;
  std::future<JobResult> future = promise.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] {
    return stopping_ || queue_.size() < options_.queue_capacity;
  });
  if (stopping_) {
    lock.unlock();
    JobResult rejected;
    rejected.tag = std::move(job.tag);
    rejected.error = "compile service is shut down";
    promise.set_value(std::move(rejected));
    return future;
  }
  ++stats_.submitted;
  const auto deadline = deadline_of(job);
  queue_.push_back(Pending{std::move(job), std::move(promise), {}, {}, deadline});
  stats_.peak_queue = std::max(stats_.peak_queue, queue_.size());
  lock.unlock();
  not_empty_.notify_one();
  return future;
}

void CompileService::submit_async(CompileJob job, Callback done) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] {
    return stopping_ || queue_.size() < options_.queue_capacity;
  });
  if (stopping_) {
    lock.unlock();
    JobResult rejected;
    rejected.tag = std::move(job.tag);
    rejected.error = "compile service is shut down";
    done(std::move(rejected));
    return;
  }
  ++stats_.submitted;
  const auto deadline = deadline_of(job);
  queue_.push_back(Pending{std::move(job), {}, std::move(done), {}, deadline});
  stats_.peak_queue = std::max(stats_.peak_queue, queue_.size());
  lock.unlock();
  not_empty_.notify_one();
}

bool CompileService::try_submit_async(CompileJob& job, Callback& done,
                                      std::uint64_t* retry_after_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) {
    lock.unlock();
    JobResult rejected;
    rejected.tag = std::move(job.tag);
    rejected.error = "compile service is shut down";
    done(std::move(rejected));
    return true;  // consumed: the rejection IS the completion
  }
  if (queue_.size() >= options_.queue_capacity) {
    const std::size_t depth = queue_.size();
    lock.unlock();
    if (retry_after_ms) *retry_after_ms = backoff_ms(depth);
    obs::metrics().counter("service.queue_full").add(1);
    return false;
  }
  ++stats_.submitted;
  const auto deadline = deadline_of(job);
  queue_.push_back(Pending{std::move(job), {}, std::move(done), {}, deadline});
  stats_.peak_queue = std::max(stats_.peak_queue, queue_.size());
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

std::uint64_t CompileService::suggested_backoff_ms() const {
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth = queue_.size();
  }
  return backoff_ms(depth);
}

std::uint64_t CompileService::backoff_ms(std::size_t queue_depth) const {
  const obs::HistogramStats c = compile_ns_.stats();
  // Before any job has completed there is no latency sample; assume a few
  // milliseconds so the very first rejection still carries a usable hint.
  double mean_ms = c.count > 0 ? c.mean / 1e6 : 5.0;
  if (mean_ms < 0.1) mean_ms = 0.1;
  const std::size_t workers = worker_n_ ? worker_n_ : 1;
  double est = static_cast<double>(queue_depth + 1) * mean_ms /
               static_cast<double>(workers);
  if (est < 1.0) est = 1.0;
  if (est > 1000.0) est = 1000.0;
  return static_cast<std::uint64_t>(est);
}

std::vector<JobResult> CompileService::compile_batch(
    std::vector<CompileJob> jobs) {
  std::vector<std::future<JobResult>> futures;
  futures.reserve(jobs.size());
  for (CompileJob& job : jobs) futures.push_back(submit(std::move(job)));
  std::vector<JobResult> results;
  results.reserve(futures.size());
  for (std::future<JobResult>& f : futures) results.push_back(f.get());
  return results;
}

void CompileService::worker_loop() {
  // Per-thread selection scratch: label buffers and the derivation arena
  // reach steady-state capacity after the first few jobs and are reused for
  // every job this worker runs afterwards (no per-job reallocation).
  select::SelectScratch scratch;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    Pending pending = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();

    double queue_ms = pending.enqueued.milliseconds();
    JobResult result;
    // The failpoint runs before the deadline check: a sleep:MS spec injects
    // queue-side latency that can legitimately expire the job.
    const bool injected = util::failpoint("service.worker.job");
    if (injected || expired(pending.deadline)) {
      result.tag = pending.job.tag;
      if (injected) {
        result.error = "failpoint: service.worker.job";
      } else {
        result.deadline_exceeded = true;
        result.error = "deadline_exceeded: job expired before a worker ran it";
      }
      result.retry_after_ms = suggested_backoff_ms();
    } else {
      try {
        result = run_job(pending.job, registry_, &scratch, pending.deadline);
      } catch (const std::exception& e) {
        // A throwing job must not unwind out of the worker (std::terminate);
        // it fails that one job and the pool keeps serving.
        result.tag = pending.job.tag;
        result.error = std::string("job threw: ") + e.what();
      } catch (...) {
        result.tag = pending.job.tag;
        result.error = "job threw an unknown exception";
      }
      if (result.deadline_exceeded)
        result.retry_after_ms = suggested_backoff_ms();
    }
    result.times.queue_ms = queue_ms;
    if (result.deadline_exceeded)
      obs::metrics().counter("service.deadline_exceeded").add(1);

    // Latency accumulation is wait-free (histogram atomics), so only the
    // plain counters ride the queue mutex.
    queue_ns_.record(static_cast<std::int64_t>(queue_ms * 1e6));
    compile_ns_.record(
        static_cast<std::int64_t>(result.times.compile_ms * 1e6));
    obs::metrics().histogram("service.queue_ns")
        .record(static_cast<std::int64_t>(queue_ms * 1e6));
    obs::metrics().histogram("service.compile_ns")
        .record(static_cast<std::int64_t>(result.times.compile_ms * 1e6));
    obs::metrics().counter("service.jobs").add(1);
    if (!result.ok) obs::metrics().counter("service.failed").add(1);
    if (result.ok && !result.processor.empty())
      obs::metrics().counter("service.compiled." + result.processor).add(1);

    lock.lock();
    ++stats_.completed;
    if (!result.ok) ++stats_.failed;
    if (result.deadline_exceeded) ++stats_.deadline_exceeded;
    if (result.semantics_checked) {
      ++stats_.semantics_checked;
      if (!result.ok) ++stats_.semantics_failed;
    }
    lock.unlock();

    if (pending.callback)
      pending.callback(std::move(result));
    else
      pending.promise.set_value(std::move(result));
  }
}

ServiceStats CompileService::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
  }
  const obs::HistogramStats q = queue_ns_.stats();
  const obs::HistogramStats c = compile_ns_.stats();
  constexpr double kMs = 1e6;  // histograms hold nanoseconds
  s.total_queue_ms = static_cast<double>(q.sum) / kMs;
  s.total_compile_ms = static_cast<double>(c.sum) / kMs;
  s.mean_queue_ms = q.mean / kMs;
  s.p50_queue_ms = static_cast<double>(q.p50) / kMs;
  s.p90_queue_ms = static_cast<double>(q.p90) / kMs;
  s.p99_queue_ms = static_cast<double>(q.p99) / kMs;
  s.mean_compile_ms = c.mean / kMs;
  s.p50_compile_ms = static_cast<double>(c.p50) / kMs;
  s.p90_compile_ms = static_cast<double>(c.p90) / kMs;
  s.p99_compile_ms = static_cast<double>(c.p99) / kMs;
  return s;
}

JobResult CompileService::run_job(const CompileJob& job,
                                  TargetRegistry& registry,
                                  select::SelectScratch* scratch,
                                  std::chrono::steady_clock::time_point deadline) {
  obs::Span span("service.job");
  if (!job.tag.empty()) span.note("tag", job.tag);
  if (!job.model.empty()) span.note("model", job.model);
  JobResult result;
  result.tag = job.tag;
  util::DiagnosticSink diags;
  util::Timer timer;

  // Cancellation token: checked between pipeline phases so an expired job
  // stops at the next phase boundary instead of finishing a doomed compile.
  auto past_deadline = [&](const char* phase) {
    if (!expired(deadline)) return false;
    result.ok = false;
    result.deadline_exceeded = true;
    result.error = std::string("deadline_exceeded: after ") + phase;
    result.diagnostics = diags.str();
    return true;
  };

  if (util::failpoint("service.job.alloc")) throw std::bad_alloc();

  const core::RetargetOptions& ropts =
      job.retarget ? *job.retarget : registry.options().retarget;
  std::shared_ptr<const core::RetargetResult> target =
      job.model.empty() ? registry.get(job.hdl, ropts, diags)
                        : registry.get_model(job.model, ropts, diags);
  result.times.target_ms = timer.milliseconds();
  if (!target) {
    result.error = diags.first_error();
    if (result.error.empty()) result.error = "retargeting failed";
    result.diagnostics = diags.str();
    return result;
  }
  result.processor = target->processor;
  result.target = target;
  if (past_deadline("target resolution")) return result;

  std::shared_ptr<const ir::Program> program = job.program;
  if (!program && !job.kernel.empty()) {
    timer.reset();
    std::optional<ir::Program> parsed = ir::parse_kernel(job.kernel, diags);
    result.times.frontend_ms = timer.milliseconds();
    if (!parsed) {
      result.error = diags.first_error();
      if (result.error.empty()) result.error = "kernel parse failed";
      result.diagnostics = diags.str();
      return result;
    }
    program = std::make_shared<const ir::Program>(std::move(*parsed));
    if (past_deadline("kernel parse")) return result;
  }
  if (!program) {
    // Retarget-only request: warming the registry / probing the model.
    result.ok = true;
    result.diagnostics = diags.str();
    return result;
  }

  timer.reset();
  core::Compiler compiler(target);
  std::optional<core::CompileResult> compiled =
      compiler.compile(*program, job.options, diags, scratch);
  result.times.compile_ms = timer.milliseconds();
  result.diagnostics = diags.str();
  if (!compiled) {
    result.error = diags.first_error();
    if (result.error.empty()) result.error = "compilation failed";
    return result;
  }
  result.ok = true;
  result.code_size = compiled->code_size();
  result.rts = compiled->selection.total_rts;
  if (job.want_listing) result.listing = compiled->listing();
  if (past_deadline("compile")) return result;

  if (job.check_semantics) {
    sim::CheckOptions sopts;
    sopts.scratch_memory = job.options.spill.scratch_memory;
    sopts.scratch_base = job.options.spill.scratch_base;
    sopts.scratch_slots = job.options.spill.scratch_slots;
    sim::CheckReport chk =
        sim::check_semantics(*program, *compiled, *target, sopts);
    switch (chk.status) {
      case sim::CheckStatus::kAgree:
        result.semantics_checked = true;
        break;
      case sim::CheckStatus::kSkipped:
        result.semantics_skipped = chk.detail;
        break;
      case sim::CheckStatus::kDecodeReject:
        result.semantics_checked = true;
        result.ok = false;
        result.error = "semantic decode: " + chk.detail;
        break;
      case sim::CheckStatus::kDiverged:
        result.semantics_checked = true;
        result.ok = false;
        result.error = "semantic: " + chk.detail;
        break;
    }
  }

  result.compiled = std::move(*compiled);
  return result;
}

}  // namespace record::service
