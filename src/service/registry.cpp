#include "service/registry.h"

#include <condition_variable>
#include <utility>

#include "burstab/cache.h"
#include "models/models.h"
#include "util/strings.h"

namespace record::service {

/// One cold retargeting run in progress. Waiters block on `cv` under the
/// registry mutex; the leader publishes the result plus a copy of its
/// diagnostics and flips `done`.
struct TargetRegistry::InFlight {
  std::condition_variable cv;
  bool done = false;
  std::shared_ptr<const core::RetargetResult> result;  // null on failure
  std::vector<util::Diagnostic> diags;
};

namespace {

void replay(const std::vector<util::Diagnostic>& from,
            util::DiagnosticSink& to) {
  for (const util::Diagnostic& d : from) {
    switch (d.severity) {
      case util::Severity::Note: to.note(d.loc, d.message); break;
      case util::Severity::Warning: to.warning(d.loc, d.message); break;
      case util::Severity::Error: to.error(d.loc, d.message); break;
    }
  }
}

}  // namespace

TargetRegistry::TargetRegistry(Options options)
    : options_(std::move(options)) {}

std::shared_ptr<const core::RetargetResult> TargetRegistry::get(
    std::string_view hdl_source, util::DiagnosticSink& diags) {
  return get(hdl_source, options_.retarget, diags);
}

std::shared_ptr<const core::RetargetResult> TargetRegistry::get_model(
    std::string_view model_name, util::DiagnosticSink& diags) {
  return get_model(model_name, options_.retarget, diags);
}

std::shared_ptr<const core::RetargetResult> TargetRegistry::get_model(
    std::string_view model_name, const core::RetargetOptions& options,
    util::DiagnosticSink& diags) {
  std::string_view source = models::model_source(model_name);
  if (source.empty()) {
    diags.error({}, util::fmt("unknown built-in model '{}'", model_name));
    return nullptr;
  }
  return get(source, options, diags);
}

std::shared_ptr<const core::RetargetResult> TargetRegistry::get(
    std::string_view hdl_source, const core::RetargetOptions& options,
    util::DiagnosticSink& diags) {
  if (options.extra_rewrites) {
    diags.error({}, "TargetRegistry cannot serve requests with extra_rewrites"
                    " (no stable content hash); call Record::retarget");
    return nullptr;
  }
  const std::uint64_t key = burstab::TargetCache::key_of(
      hdl_source, core::options_digest(options));

  std::unique_lock<std::mutex> lock(mu_);
  if (auto it = lru_.find(key); it != lru_.end()) {
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second.order);  // touch
    replay(it->second.diags, diags);
    return it->second.result;
  }
  if (auto it = inflight_.find(key); it != inflight_.end()) {
    ++stats_.coalesced;
    std::shared_ptr<InFlight> flight = it->second;
    flight->cv.wait(lock, [&] { return flight->done; });
    replay(flight->diags, diags);
    return flight->result;
  }

  // Leader: run the pipeline outside the lock.
  ++stats_.misses;
  auto flight = std::make_shared<InFlight>();
  inflight_.emplace(key, flight);
  lock.unlock();

  util::DiagnosticSink run_diags;
  std::shared_ptr<const core::RetargetResult> result;
  try {
    std::optional<core::RetargetResult> run =
        core::Record::retarget(hdl_source, options, run_diags);
    if (run)
      result = std::make_shared<const core::RetargetResult>(std::move(*run));
  } catch (const std::exception& e) {
    // The flight must still be completed and erased, or every current and
    // future waiter on this key would block forever.
    run_diags.error({}, util::fmt("retargeting threw: {}", e.what()));
  } catch (...) {
    run_diags.error({}, "retargeting threw an unknown exception");
  }

  lock.lock();
  if (result) {
    if (result->cache_hit) ++stats_.disk_hits;
    order_.push_front(key);
    lru_[key] = Entry{order_.begin(), result, run_diags.all()};
    if (options_.capacity > 0) {
      while (lru_.size() > options_.capacity) {
        std::uint64_t victim = order_.back();
        order_.pop_back();
        lru_.erase(victim);
        ++stats_.evictions;
      }
    }
  } else {
    ++stats_.failures;
  }
  flight->result = result;
  flight->diags = run_diags.all();
  flight->done = true;
  inflight_.erase(key);
  flight->cv.notify_all();
  lock.unlock();

  replay(run_diags.all(), diags);
  return result;
}

RegistryStats TargetRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistryStats s = stats_;
  s.entries = lru_.size();
  return s;
}

void TargetRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  order_.clear();
}

}  // namespace record::service
