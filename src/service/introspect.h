// Live introspection commands for the compile-service daemon.
//
// recordd's JSON-lines protocol carries, next to compile requests, small
// control-plane commands identified by a "cmd" member:
//
//   {"cmd": "stats"}            -> one response object with the full
//       observability snapshot: service job counters and latency
//       percentiles (queue wait / compile time), registry occupancy and
//       hit/miss/coalesce counts, and every counter/gauge/histogram in the
//       process-wide obs::metrics() registry (retarget phases, burstab
//       cache traffic, per-model compile counts, oracle verdicts, ...).
//
//   {"cmd": "trace", "last": N} -> the flight recorder: the N most recently
//       completed trace spans (default 64) across all threads, oldest
//       first, with names, start/duration microseconds, thread ids, nesting
//       depth and annotations. Requires tracing to be enabled (recordd
//       --trace); otherwise the response says so and carries no events.
//
//   {"cmd": "explain", "model"|"hdl": ..., "kernel": ...} -> the chosen
//       derivation per IR statement: rule applications in evaluation order
//       with rule text, closed costs, the rejected alternatives (other
//       non-terminals' winning rules and costs at the same node) and every
//       immediate-fit decision. Statement coverage snapshots additionally
//       appear in {"cmd":"stats"} under "coverage" when coverage recording
//       is enabled (recordd enables it at startup).
//
// The handler lives in the library (not the recordd example) so tests can
// round-trip the commands against a CompileService directly.
#pragma once

#include <optional>

#include "service/json.h"
#include "service/service.h"

namespace record::service {

/// Handles a control-plane command; nullopt when `request` carries no "cmd"
/// member (i.e. it is an ordinary compile request). Unknown commands yield
/// an {"ok": false} response rather than nullopt, so a typo'd command never
/// silently turns into a compile job.
[[nodiscard]] std::optional<Json> handle_introspection(
    const Json& request, CompileService& service);

/// The {"cmd":"stats"} response body (exposed for reuse by tools that want
/// a snapshot without a request object).
[[nodiscard]] Json stats_response(CompileService& service);

}  // namespace record::service
