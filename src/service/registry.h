// Thread-safe in-memory target registry: the hot tier above the persistent
// burstab::TargetCache.
//
// A long-running compile service sees the same processor models over and
// over. The registry keeps the N hottest RetargetResults in memory in an LRU,
// keyed by the same content hash the persistent cache uses
// (TargetCache::key_of over the HDL source and core::options_digest), and
// single-flights cold keys: when K threads request the same model
// concurrently, exactly one — the leader — runs the retargeting pipeline
// (which itself consults the persistent cache when enabled); the other K-1
// block and share the leader's result and diagnostics. Results are handed
// out as shared_ptr<const RetargetResult>, so an entry evicted while compile
// jobs against it are still in flight stays alive until the last job drops
// its reference.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/record.h"

namespace record::service {

struct RegistryStats {
  std::size_t hits = 0;       // served from the in-memory LRU
  std::size_t coalesced = 0;  // waited on another thread's in-flight retarget
  std::size_t misses = 0;     // became the leader and ran the pipeline
  std::size_t disk_hits = 0;  // leader runs served by the persistent cache
  std::size_t evictions = 0;  // LRU entries displaced by capacity
  std::size_t failures = 0;   // leader runs whose retargeting failed
  std::size_t entries = 0;    // current LRU population
};

class TargetRegistry {
 public:
  struct Options {
    /// Maximum resident RetargetResults; 0 = unbounded.
    std::size_t capacity = 16;
    /// Base retargeting options applied to every request that does not carry
    /// its own. Turning on `use_target_cache` here gives the registry a
    /// persistent cold tier. Requests with `extra_rewrites` are rejected:
    /// a rewrite library has no stable content hash to key on.
    core::RetargetOptions retarget;
  };

  TargetRegistry() : TargetRegistry(Options{}) {}
  explicit TargetRegistry(Options options);

  TargetRegistry(const TargetRegistry&) = delete;
  TargetRegistry& operator=(const TargetRegistry&) = delete;

  /// Retargets `hdl_source` (or serves it hot), blocking until the result is
  /// available. Returns null on failure; the producing run's diagnostics are
  /// replayed into `diags` either way (co-waiters get a copy of the
  /// leader's).
  [[nodiscard]] std::shared_ptr<const core::RetargetResult> get(
      std::string_view hdl_source, util::DiagnosticSink& diags);
  [[nodiscard]] std::shared_ptr<const core::RetargetResult> get(
      std::string_view hdl_source, const core::RetargetOptions& options,
      util::DiagnosticSink& diags);

  /// Built-in model (src/models) by name.
  [[nodiscard]] std::shared_ptr<const core::RetargetResult> get_model(
      std::string_view model_name, util::DiagnosticSink& diags);
  [[nodiscard]] std::shared_ptr<const core::RetargetResult> get_model(
      std::string_view model_name, const core::RetargetOptions& options,
      util::DiagnosticSink& diags);

  [[nodiscard]] RegistryStats stats() const;

  /// Drops all resident entries (in-flight runs are unaffected; their
  /// results are still published to their waiters and inserted fresh).
  void clear();

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  struct InFlight;

  Options options_;

  mutable std::mutex mu_;
  // LRU: most-recent at front; map values hold the list position. The
  // producing run's diagnostics ride along so hot hits replay them exactly
  // like the leader and its co-waiters saw them.
  struct Entry {
    std::list<std::uint64_t>::iterator order;
    std::shared_ptr<const core::RetargetResult> result;
    std::vector<util::Diagnostic> diags;
  };
  std::list<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, Entry> lru_;
  std::unordered_map<std::uint64_t, std::shared_ptr<InFlight>> inflight_;
  RegistryStats stats_;
};

}  // namespace record::service
