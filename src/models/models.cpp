#include "models/models.h"

namespace record::models {

const std::vector<ModelInfo>& builtin_models() {
  static const std::vector<ModelInfo> kModels = {
      {"demo", "small horizontally-microcoded demo datapath", 439, 356.0},
      {"ref", "large orthogonal reference machine", 1703, 84.0},
      {"manocpu", "Mano's basic computer (single-bus accumulator)", 207,
       6.3},
      {"tanenbaum", "Tanenbaum Mac-1-style educational machine", 232, 11.7},
      {"bass_boost", "in-house audio ASIP (bass boost filter)", 89, 3.7},
      {"tms320c25", "TI TMS320C25-class fixed-point DSP", 356, 165.0},
  };
  return kModels;
}

std::string_view model_source(std::string_view name) {
  if (name == "demo") return demo_source();
  if (name == "ref") return ref_source();
  if (name == "manocpu") return manocpu_source();
  if (name == "tanenbaum") return tanenbaum_source();
  if (name == "bass_boost") return bass_boost_source();
  if (name == "tms320c25") return tms320c25_source();
  return {};
}

}  // namespace record::models
