// "ref": a large orthogonal reference machine. Four general registers, two
// data memories, rich operand muxes and a 7-function ALU under a fully
// horizontal microinstruction — the fork product of route enumeration is
// deliberately large (the paper reports a 1703-template extended base for
// its ref model).
//
// Microinstruction word (29 bits):
//   asel  28:26  ALU A source (0-3 R0..R3, 4 imm, 5 dmem)
//   bsel  25:23  ALU B source (0-3 R0..R3, 4 imm, 5 cmem)
//   aluf  22:20  ALU fn (0 add, 1 sub, 2 and, 3 or, 4 pass-b, 5 pass-a, 6 mul)
//   dst   19:17  destination (1-4 R0..R3, 5 PC)
//   dmsel 16:15  dmem address source (0 imm, 1 R2, 2 R3)
//   cmsel 14     cmem address source (0 imm, 1 R3)
//   dwe   13     dmem write (din = R1)
//   cwe   12     cmem write (din = R0)
//   imm   11:0   immediate field
#include "models/models.h"

namespace record::models {

std::string_view ref_source() {
  static constexpr std::string_view kSource = R"HDL(
PROCESSOR ref;

CONTROLLER mc (OUT w:(28:0));

REGISTER R0 (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

REGISTER R1 (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

REGISTER R2 (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

REGISTER R3 (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

REGISTER PC (IN d:(11:0); OUT q:(11:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

MEMORY dmem (IN addr:(11:0); IN din:(15:0); OUT dout:(15:0);
             CTRL we:(0:0)) SIZE 4096;
BEHAVIOR
  dout := CELL[addr];
  CELL[addr] := din WHEN we = 1;
END;

MEMORY cmem (IN addr:(11:0); IN din:(15:0); OUT dout:(15:0);
             CTRL we:(0:0)) SIZE 4096;
BEHAVIOR
  dout := CELL[addr];
  CELL[addr] := din WHEN we = 1;
END;

MODULE izx (IN a:(11:0); OUT y:(15:0));
BEHAVIOR
  y := ZXT(a);
END;

MODULE amux (IN r0:(15:0); IN r1:(15:0); IN r2:(15:0); IN r3:(15:0);
             IN im:(15:0); IN m:(15:0); OUT y:(15:0); CTRL s:(2:0));
BEHAVIOR
  y := r0 WHEN s = 0;
  y := r1 WHEN s = 1;
  y := r2 WHEN s = 2;
  y := r3 WHEN s = 3;
  y := im WHEN s = 4;
  y := m  WHEN s = 5;
END;

MODULE bmux (IN r0:(15:0); IN r1:(15:0); IN r2:(15:0); IN r3:(15:0);
             IN im:(15:0); IN m:(15:0); OUT y:(15:0); CTRL s:(2:0));
BEHAVIOR
  y := r0 WHEN s = 0;
  y := r1 WHEN s = 1;
  y := r2 WHEN s = 2;
  y := r3 WHEN s = 3;
  y := im WHEN s = 4;
  y := m  WHEN s = 5;
END;

MODULE alu (IN a:(15:0); IN b:(15:0); OUT y:(15:0); CTRL f:(2:0));
BEHAVIOR
  y := a + b WHEN f = 0;
  y := a - b WHEN f = 1;
  y := a & b WHEN f = 2;
  y := a | b WHEN f = 3;
  y := b     WHEN f = 4;
  y := a     WHEN f = 5;
  y := a * b WHEN f = 6;
END;

MODULE dmx (IN im:(11:0); IN r2:(11:0); IN r3:(11:0); OUT y:(11:0);
            CTRL s:(1:0));
BEHAVIOR
  y := im WHEN s = 0;
  y := r2 WHEN s = 1;
  y := r3 WHEN s = 2;
END;

MODULE cmx (IN im:(11:0); IN r3:(11:0); OUT y:(11:0); CTRL s:(0:0));
BEHAVIOR
  y := im WHEN s = 0;
  y := r3 WHEN s = 1;
END;

MODULE ddec (IN d:(2:0);
             OUT r0:(0:0); OUT r1:(0:0); OUT r2:(0:0); OUT r3:(0:0);
             OUT pc:(0:0));
BEHAVIOR
  r0 := 1 WHEN d = 1;
  r1 := 1 WHEN d = 2;
  r2 := 1 WHEN d = 3;
  r3 := 1 WHEN d = 4;
  pc := 1 WHEN d = 5;
END;

PORT pin: IN (15:0);
PORT pout: OUT (15:0);

STRUCTURE
PARTS
  MC:   mc;
  R0:   R0;
  R1:   R1;
  R2:   R2;
  R3:   R3;
  PC:   PC;
  dmem: dmem;
  cmem: cmem;
  IZX:  izx;
  AM:   amux;
  BM:   bmux;
  ALU:  alu;
  DMX:  dmx;
  CMX:  cmx;
  DD:   ddec;
CONNECTIONS
  IZX.a := MC.w(11:0);

  AM.r0 := R0.q;
  AM.r1 := R1.q;
  AM.r2 := R2.q;
  AM.r3 := R3.q;
  AM.im := IZX.y;
  AM.m  := dmem.dout;
  AM.s  := MC.w(28:26);

  BM.r0 := R0.q;
  BM.r1 := R1.q;
  BM.r2 := R2.q;
  BM.r3 := R3.q;
  BM.im := IZX.y;
  BM.m  := cmem.dout;
  BM.s  := MC.w(25:23);

  ALU.a := AM.y;
  ALU.b := BM.y;
  ALU.f := MC.w(22:20);

  DD.d  := MC.w(19:17);

  R0.d  := ALU.y;
  R0.ld := DD.r0;
  R1.d  := ALU.y;
  R1.ld := DD.r1;
  R2.d  := ALU.y;
  R2.ld := DD.r2;
  R3.d  := ALU.y;
  R3.ld := DD.r3;
  PC.d  := MC.w(11:0);
  PC.ld := DD.pc;

  DMX.im := MC.w(11:0);
  DMX.r2 := R2.q(11:0);
  DMX.r3 := R3.q(11:0);
  DMX.s  := MC.w(16:15);
  dmem.addr := DMX.y;
  dmem.din  := R1.q;
  dmem.we   := MC.w(13:13);

  CMX.im := MC.w(11:0);
  CMX.r3 := R3.q(11:0);
  CMX.s  := MC.w(14:14);
  cmem.addr := CMX.y;
  cmem.din  := R0.q;
  cmem.we   := MC.w(12:12);

  pout := R0.q;
END;
)HDL";
  return kSource;
}

}  // namespace record::models
