// An in-house audio ASIP in the style of the Philips bass-boost core
// (Strik et al., "Efficient Code Generation for In-House DSP Cores",
// ED&TC 1995): a minimal biquad-filter engine.
//
// Datapath: 32-bit accumulator A behind an adder, a 16x16 multiplier fed by
// the sample memory and the coefficient ROM, an output scaling shifter whose
// shift amount lives in a *mode register* (rarely changed configuration, the
// paper's mode-register feature), and sample input/output ports.
//
// Instruction word (20 bits):
//   spc  19:18  sample pointer op (0 none, 1 load sa, 2 inc, 3 dec)
//   cpc  17:16  coeff pointer op (0 none, 1 load ca, 2 inc)
//   ssel 15     sample address source (0 sa field, 1 SP1)
//   csel 14     coeff address source (0 ca field, 1 CP)
//   op   13:11  opcode (0 ldp, 1 mac, 2 clr, 3 out, 4 stin, 5 setsm,
//               6 lda, 7 macs)
//   ca   10:6   coefficient-ROM address
//   sa   5:0    sample-RAM address
#include "models/models.h"

namespace record::models {

std::string_view bass_boost_source() {
  static constexpr std::string_view kSource = R"HDL(
PROCESSOR bass_boost;

CONTROLLER iw (OUT w:(19:0));

REGISTER A (IN d:(31:0); OUT q:(31:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

-- Streaming pointers into the sample RAM and coefficient ROM.
REGISTER SP1 (IN d:(5:0); OUT q:(5:0); CTRL c:(1:0));
BEHAVIOR
  q := d     WHEN c = 1;
  q := q + 1 WHEN c = 2;
  q := q - 1 WHEN c = 3;
END;

REGISTER CP (IN d:(4:0); OUT q:(4:0); CTRL c:(1:0));
BEHAVIOR
  q := d     WHEN c = 1;
  q := q + 1 WHEN c = 2;
END;

-- Output scaling mode (shift amount): a mode register.
MODEREG SM (IN d:(1:0); OUT q:(1:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

MEMORY sram (IN addr:(5:0); IN din:(15:0); OUT dout:(15:0);
             CTRL we:(0:0)) SIZE 64;
BEHAVIOR
  dout := CELL[addr];
  CELL[addr] := din WHEN we = 1;
END;

-- Coefficient ROM (read-only).
MEMORY crom (IN addr:(4:0); OUT dout:(15:0)) SIZE 32;
BEHAVIOR
  dout := CELL[addr];
END;

MODULE mul (IN a:(15:0); IN b:(15:0); OUT y:(31:0));
BEHAVIOR
  y := a * b;
END;

MODULE acu (IN a:(31:0); IN b:(31:0); OUT y:(31:0); CTRL f:(1:0));
BEHAVIOR
  y := a + b WHEN f = 0;
  y := b     WHEN f = 1;
  y := 0     WHEN f = 2;
  y := a - b WHEN f = 3;
END;

-- Output scaler controlled by the mode register.
MODULE scl (IN a:(31:0); OUT y:(15:0); CTRL m:(1:0));
BEHAVIOR
  y := a(15:0)  WHEN m = 0;
  y := a(23:8)  WHEN m = 1;
  y := a(31:16) WHEN m = 2;
END;

-- Decoder.
MODULE dec (IN op:(2:0);
            OUT ald:(0:0); OUT af:(1:0); OUT bsel:(0:0); OUT swe:(0:0);
            OUT smld:(0:0); OUT insel:(0:0));
BEHAVIOR
  ald := 1 WHEN op = 0;
  ald := 1 WHEN op = 1;
  ald := 1 WHEN op = 2;
  ald := 1 WHEN op = 6;

  af := 1 WHEN op = 0;
  af := 0 WHEN op = 1;
  af := 2 WHEN op = 2;
  af := 1 WHEN op = 6;
  af := 3 WHEN op = 7;

  ald := 1 WHEN op = 7;

  bsel := 1 WHEN op = 6;

  swe := 1 WHEN op = 4;
  swe := 1 WHEN op = 3;

  smld := 1 WHEN op = 5;

  insel := 1 WHEN op = 4;
END;

-- Sample-write mux: input port or scaled accumulator.
MODULE wmux (IN a:(15:0); IN b:(15:0); OUT y:(15:0); CTRL s:(0:0));
BEHAVIOR
  y := a WHEN s = 0;
  y := b WHEN s = 1;
END;

-- Accumulator operand mux: product or sign-extended sample (LDA).
MODULE bmux (IN a:(31:0); IN b:(31:0); OUT y:(31:0); CTRL s:(0:0));
BEHAVIOR
  y := a WHEN s = 0;
  y := b WHEN s = 1;
END;

-- Extends the sample for the accumulate path.
MODULE sx (IN a:(15:0); OUT y:(31:0));
BEHAVIOR
  y := SXT(a);
END;

-- Address muxes: direct field or streaming pointer.
MODULE samux (IN f:(5:0); IN p:(5:0); OUT y:(5:0); CTRL s:(0:0));
BEHAVIOR
  y := f WHEN s = 0;
  y := p WHEN s = 1;
END;

MODULE camux (IN f:(4:0); IN p:(4:0); OUT y:(4:0); CTRL s:(0:0));
BEHAVIOR
  y := f WHEN s = 0;
  y := p WHEN s = 1;
END;

PORT sin: IN (15:0);
PORT sout: OUT (15:0);

STRUCTURE
PARTS
  IW:   iw;
  A:    A;
  SP1:  SP1;
  CP:   CP;
  SM:   SM;
  sram: sram;
  crom: crom;
  MUL:  mul;
  ACU:  acu;
  SCL:  scl;
  DEC:  dec;
  WMX:  wmux;
  BMX:  bmux;
  SX:   sx;
  SAM:  samux;
  CAM:  camux;
CONNECTIONS
  DEC.op    := IW.w(13:11);

  SAM.f := IW.w(5:0);
  SAM.p := SP1.q;
  SAM.s := IW.w(15:15);
  sram.addr := SAM.y;

  CAM.f := IW.w(10:6);
  CAM.p := CP.q;
  CAM.s := IW.w(14:14);
  crom.addr := CAM.y;

  SP1.d := IW.w(5:0);
  SP1.c := IW.w(19:18);
  CP.d  := IW.w(10:6);
  CP.c  := IW.w(17:16);

  MUL.a     := sram.dout;
  MUL.b     := crom.dout;
  SX.a      := sram.dout;

  BMX.a     := MUL.y;
  BMX.b     := SX.y;
  BMX.s     := DEC.bsel;

  ACU.a     := A.q;
  ACU.b     := BMX.y;
  ACU.f     := DEC.af;
  A.d       := ACU.y;
  A.ld      := DEC.ald;

  SCL.a     := A.q;
  SCL.m     := SM.q;

  WMX.a     := SCL.y;
  WMX.b     := sin;
  WMX.s     := DEC.insel;
  sram.din  := WMX.y;
  sram.we   := DEC.swe;

  SM.d      := IW.w(1:0);
  SM.ld     := DEC.smld;

  sout      := SCL.y;
END;
)HDL";
  return kSource;
}

}  // namespace record::models
