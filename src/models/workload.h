// Synthetic accumulator-chain workloads over the built-in models — the
// shared job generator for the selection/service benchmarks and the
// concurrent-service tests, so every harness exercises the same programs.
#pragma once

#include <string>

#include "ir/builder.h"

namespace record::models {

/// Per-model accumulator shape. mem2 empty = plain additive load chain;
/// non-empty = multiply-accumulate terms (the DSP-style covers).
struct ChainShape {
  const char* model;
  const char* acc;   // accumulator register
  const char* mem1;  // first operand memory
  const char* mem2;  // second operand memory ("" = additive chain)
};

/// One shape per built-in model (Table 3 order).
inline constexpr ChainShape kChainShapes[] = {
    {"demo", "R0", "mem", ""},
    {"ref", "R0", "dmem", ""},
    {"manocpu", "AC", "mem", ""},
    {"tanenbaum", "AC", "mem", ""},
    {"bass_boost", "A", "sram", "crom"},
    {"tms320c25", "ACC", "ram", "ram"},
};

/// acc = t0 + t1 + ... + t_{k-1}; terms are loads or products.
inline ir::Program chain_program(const ChainShape& s, int k) {
  ir::ProgramBuilder b(std::string(s.model) + "_chain" + std::to_string(k));
  b.reg("acc", s.acc);
  auto term = [&](int i) -> ir::ExprPtr {
    if (s.mem2[0] == '\0') {
      std::string v = "m" + std::to_string(i);
      b.cell(v, s.mem1, i % 16);
      return ir::e_var(v);
    }
    std::string u = "u" + std::to_string(i), v = "v" + std::to_string(i);
    b.cell(u, s.mem1, i % 16);
    b.cell(v, s.mem2, (i + 1) % 16);
    return ir::e_mul(ir::e_var(u), ir::e_var(v));
  };
  ir::ExprPtr sum = term(0);
  for (int i = 1; i < k; ++i) sum = ir::e_add(std::move(sum), term(i));
  b.let("acc", std::move(sum));
  return b.take();
}

}  // namespace record::models
