// TMS320C25-class fixed-point DSP model.
//
// Architecture (following the TMS320C2x User's Guide at the granularity
// needed for code generation): 32-bit accumulator ACC behind a 32-bit ALU,
// T/P multiplier registers (16x16 -> 32), two post-modify address registers
// AR1/AR2, a 64K x 16 data memory with direct (immediate) and indirect
// (*ARn) addressing, a scaling shifter on the memory operand path, SACL/SACH
// high/low stores, immediate loads, I/O ports, and PC with unconditional and
// accumulator-conditional branches.
//
// Instruction word (27 bits, encoded format):
//   pm    26      memory-operand source (0 data ram, 1 program memory:
//                 the C25's table-read / MAC-coefficient path)
//   op    25:22   opcode
//   am    21:20   addressing mode / sub-opcode (0 direct, 1 *AR1, 2 *AR2,
//                 3 *AR3)
//   amod  19:18   AR post-modify (0 none, 1 AR1+, 2 AR2+, 3 AR1-)
//   shf   17:16   operand scaling shift (0, 1, 4, 0 bits)
//   data  15:0    immediate / direct address / branch target
//
// Opcodes: 0 LAC, 1 ADD, 2 SUB, 3 AND, 4 OR, 5 XOR, 6 LT, 7 MPY,
// 8/am PAC|APAC|SPAC, 9 SACL, 10 SACH, 11/am IN|LAR1|LAR2, 12 ZAC,
// 13 LACK, 14/am B|BNZ|BZ, 15 MPYA (MPY + APAC in one word).
//
// The MPYA opcode makes the ACC-accumulate RT and the P-multiply RT
// condition-compatible, so code compaction can fuse multiply-accumulate
// chains exactly like the real MAC/MPYA instructions.
#include "models/models.h"

namespace record::models {

std::string_view tms320c25_source() {
  static constexpr std::string_view kSource = R"HDL(
PROCESSOR tms320c25;

CONTROLLER imem (OUT word:(26:0));

-- 32-bit accumulator.
REGISTER ACC (IN d:(31:0); OUT q:(31:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

-- Multiplier operand register.
REGISTER T (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

-- Product register.
REGISTER P (IN d:(31:0); OUT q:(31:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

-- Post-modify address registers.
REGISTER AR1 (IN d:(15:0); OUT q:(15:0); CTRL c:(1:0));
BEHAVIOR
  q := d     WHEN c = 1;
  q := q + 1 WHEN c = 2;
  q := q - 1 WHEN c = 3;
END;

REGISTER AR2 (IN d:(15:0); OUT q:(15:0); CTRL c:(1:0));
BEHAVIOR
  q := d     WHEN c = 1;
  q := q + 1 WHEN c = 2;
  q := q - 1 WHEN c = 3;
END;

REGISTER AR3 (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

-- Program counter (jump destination only; sequencing is implicit).
REGISTER PC (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

MEMORY ram (IN addr:(15:0); IN din:(15:0); OUT dout:(15:0);
            CTRL we:(0:0)) SIZE 65536;
BEHAVIOR
  dout := CELL[addr];
  CELL[addr] := din WHEN we = 1;
END;

-- Program memory, readable as data (TBLR / MAC coefficient fetch).
MEMORY pmem (IN addr:(15:0); OUT dout:(15:0)) SIZE 65536;
BEHAVIOR
  dout := CELL[addr];
END;

-- Memory-operand source mux: data ram or program memory.
MODULE pmux (IN a:(15:0); IN b:(15:0); OUT y:(15:0); CTRL s:(0:0));
BEHAVIOR
  y := a WHEN s = 0;
  y := b WHEN s = 1;
END;

-- Data-address mux: direct field or an address register.
MODULE amux (IN imm:(15:0); IN a1:(15:0); IN a2:(15:0); IN a3:(15:0);
             OUT y:(15:0); CTRL s:(1:0));
BEHAVIOR
  y := imm WHEN s = 0;
  y := a1  WHEN s = 1;
  y := a2  WHEN s = 2;
  y := a3  WHEN s = 3;
END;

-- Sign extension of the 16-bit memory operand.
MODULE sxtm (IN a:(15:0); OUT y:(31:0));
BEHAVIOR
  y := SXT(a);
END;

-- Sign extension of the 16-bit immediate operand.
MODULE sxti (IN a:(15:0); OUT y:(31:0));
BEHAVIOR
  y := SXT(a);
END;

-- Scaling shifter on the memory-operand path (subset of the C25's 0..15).
MODULE scaler (IN a:(31:0); OUT y:(31:0); CTRL s:(1:0));
BEHAVIOR
  y := a      WHEN s = 0;
  y := a << 1 WHEN s = 1;
  y := a << 4 WHEN s = 2;
  y := a      WHEN s = 3;
END;

-- 16x16 -> 32 multiplier.
MODULE mult (IN a:(15:0); IN b:(15:0); OUT y:(31:0));
BEHAVIOR
  y := a * b;
END;

-- ALU operand-B mux: scaled memory operand, product register or immediate.
MODULE bmux (IN m:(31:0); IN p:(31:0); IN i:(31:0); OUT y:(31:0);
             CTRL s:(1:0));
BEHAVIOR
  y := m WHEN s = 0;
  y := p WHEN s = 1;
  y := i WHEN s = 2;
END;

-- 32-bit ALU.
MODULE alu (IN a:(31:0); IN b:(31:0); OUT y:(31:0); CTRL f:(3:0));
BEHAVIOR
  y := b     WHEN f = 0;
  y := a + b WHEN f = 1;
  y := a - b WHEN f = 2;
  y := a & b WHEN f = 3;
  y := a | b WHEN f = 4;
  y := a ^ b WHEN f = 5;
  y := 0     WHEN f = 6;
END;

-- Store selector: low or high accumulator half (SACL / SACH).
MODULE smux (IN a:(31:0); OUT y:(15:0); CTRL s:(0:0));
BEHAVIOR
  y := a(15:0)  WHEN s = 0;
  y := a(31:16) WHEN s = 1;
END;

-- Memory write-data mux: store path or input port (IN instruction).
MODULE dmux (IN a:(15:0); IN b:(15:0); OUT y:(15:0); CTRL s:(0:0));
BEHAVIOR
  y := a WHEN s = 0;
  y := b WHEN s = 1;
END;

-- Accumulator zero detector feeding conditional-branch control.
MODULE zdet (IN a:(31:0); OUT z:(0:0));
BEHAVIOR
  z := ISZERO(a);
END;

-- Instruction decoder (random logic; traced symbolically by ISE).
MODULE dec (IN op:(3:0); IN am:(1:0); IN amod:(1:0); IN z:(0:0);
            OUT acc_ld:(0:0); OUT t_ld:(0:0); OUT p_ld:(0:0);
            OUT we:(0:0); OUT pc_ld:(0:0); OUT aluf:(3:0);
            OUT bsel:(1:0); OUT hisel:(0:0); OUT insel:(0:0);
            OUT ar1c:(1:0); OUT ar2c:(1:0); OUT ar3ld:(0:0));
BEHAVIOR
  acc_ld := 1 WHEN op = 0;
  acc_ld := 1 WHEN op = 1;
  acc_ld := 1 WHEN op = 2;
  acc_ld := 1 WHEN op = 3;
  acc_ld := 1 WHEN op = 4;
  acc_ld := 1 WHEN op = 5;
  acc_ld := 1 WHEN op = 8;
  acc_ld := 1 WHEN op = 12;
  acc_ld := 1 WHEN op = 13;
  acc_ld := 1 WHEN op = 15;

  t_ld := 1 WHEN op = 6;

  p_ld := 1 WHEN op = 7;
  p_ld := 1 WHEN op = 15;

  we := 1 WHEN op = 9;
  we := 1 WHEN op = 10;
  we := 1 WHEN op = 11 AND am = 0;

  pc_ld := 1 WHEN op = 14 AND am = 0;
  pc_ld := 1 WHEN op = 14 AND am = 1 AND z = 0;
  pc_ld := 1 WHEN op = 14 AND am = 2 AND z = 1;

  aluf := 0 WHEN op = 0;
  aluf := 1 WHEN op = 1;
  aluf := 2 WHEN op = 2;
  aluf := 3 WHEN op = 3;
  aluf := 4 WHEN op = 4;
  aluf := 5 WHEN op = 5;
  aluf := 0 WHEN op = 8 AND am = 0;
  aluf := 1 WHEN op = 8 AND am = 1;
  aluf := 2 WHEN op = 8 AND am = 2;
  aluf := 6 WHEN op = 12;
  aluf := 0 WHEN op = 13;
  aluf := 1 WHEN op = 15;

  bsel := 0 WHEN op = 0;
  bsel := 0 WHEN op = 1;
  bsel := 0 WHEN op = 2;
  bsel := 0 WHEN op = 3;
  bsel := 0 WHEN op = 4;
  bsel := 0 WHEN op = 5;
  bsel := 1 WHEN op = 8;
  bsel := 2 WHEN op = 13;
  bsel := 1 WHEN op = 15;

  hisel := 1 WHEN op = 10;

  insel := 1 WHEN op = 11 AND am = 0;

  ar1c := 1 WHEN op = 11 AND am = 1;
  ar1c := 2 WHEN amod = 1;
  ar1c := 3 WHEN amod = 3;

  ar2c := 1 WHEN op = 11 AND am = 2;
  ar2c := 2 WHEN amod = 2;

  ar3ld := 1 WHEN op = 11 AND am = 3;
END;

PORT pin: IN (15:0);
PORT pout: OUT (15:0);

STRUCTURE
PARTS
  IM:   imem;
  ACC:  ACC;
  T:    T;
  P:    P;
  AR1:  AR1;
  AR2:  AR2;
  AR3:  AR3;
  PC:   PC;
  ram:  ram;
  pmem: pmem;
  PMX:  pmux;
  AMUX: amux;
  SXM:  sxtm;
  SXI:  sxti;
  SCL:  scaler;
  MUL:  mult;
  BMUX: bmux;
  ALU:  alu;
  SMUX: smux;
  DMUX: dmux;
  ZD:   zdet;
  DEC:  dec;
CONNECTIONS
  DEC.op   := IM.word(25:22);
  DEC.am   := IM.word(21:20);
  DEC.amod := IM.word(19:18);
  DEC.z    := ZD.z;

  AMUX.imm := IM.word(15:0);
  AMUX.a1  := AR1.q;
  AMUX.a2  := AR2.q;
  AMUX.a3  := AR3.q;
  AMUX.s   := IM.word(21:20);
  ram.addr := AMUX.y;
  pmem.addr := AMUX.y;

  PMX.a    := ram.dout;
  PMX.b    := pmem.dout;
  PMX.s    := IM.word(26:26);

  SXM.a    := PMX.y;
  SCL.a    := SXM.y;
  SCL.s    := IM.word(17:16);
  SXI.a    := IM.word(15:0);

  BMUX.m   := SCL.y;
  BMUX.p   := P.q;
  BMUX.i   := SXI.y;
  BMUX.s   := DEC.bsel;

  ALU.a    := ACC.q;
  ALU.b    := BMUX.y;
  ALU.f    := DEC.aluf;
  ACC.d    := ALU.y;
  ACC.ld   := DEC.acc_ld;

  T.d      := PMX.y;
  T.ld     := DEC.t_ld;

  MUL.a    := T.q;
  MUL.b    := PMX.y;
  P.d      := MUL.y;
  P.ld     := DEC.p_ld;

  SMUX.a   := ACC.q;
  SMUX.s   := DEC.hisel;
  DMUX.a   := SMUX.y;
  DMUX.b   := pin;
  DMUX.s   := DEC.insel;
  ram.din  := DMUX.y;
  ram.we   := DEC.we;

  AR1.d    := IM.word(15:0);
  AR1.c    := DEC.ar1c;
  AR2.d    := IM.word(15:0);
  AR2.c    := DEC.ar2c;
  AR3.d    := IM.word(15:0);
  AR3.ld   := DEC.ar3ld;

  PC.d     := IM.word(15:0);
  PC.ld    := DEC.pc_ld;

  ZD.a     := ACC.q;

  pout     := SMUX.y;
END;
)HDL";
  return kSource;
}

}  // namespace record::models
