// A. Tanenbaum's Mac-1/Mic-1-style educational machine (Structured Computer
// Organization, 3rd ed., 1990).
//
// Microprogrammed datapath: two source buses (A and B) feed a 4-function
// ALU; the C bus result is steered to one of the programmer-visible
// registers (AC, SP, TIR) or to the memory address register. MBR is loaded
// from memory; the PC takes its jump target directly from the
// microinstruction's address field. The microinstruction is horizontal.
//
// Microinstruction word (26 bits):
//   asel 25:23  A-bus source (0 AC, 1 SP, 2 TIR, 3 MBR, 4 imm)
//   bsel 22:20  B-bus source (0 AC, 1 imm)
//   aluf 19:18  ALU (0 a+b, 1 a&b, 2 a, 3 ~a)
//   dst  15:13  destination (1 AC, 2 SP, 3 TIR, 4 MAR, 5 MBR, 6 PC)
//   wr   12     memory write
//   imm  11:0   immediate / address field
#include "models/models.h"

namespace record::models {

std::string_view tanenbaum_source() {
  static constexpr std::string_view kSource = R"HDL(
PROCESSOR tanenbaum;

CONTROLLER mir (OUT w:(25:0));

REGISTER AC (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

REGISTER SP (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

REGISTER TIR (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

REGISTER MAR (IN d:(11:0); OUT q:(11:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

REGISTER MBR (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

REGISTER PC (IN d:(11:0); OUT q:(11:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

MEMORY mem (IN addr:(11:0); IN din:(15:0); OUT dout:(15:0);
            CTRL we:(0:0)) SIZE 4096;
BEHAVIOR
  dout := CELL[addr];
  CELL[addr] := din WHEN we = 1;
END;

MODULE amux (IN r0:(15:0); IN r1:(15:0); IN r2:(15:0); IN r3:(15:0);
             IN im:(15:0); OUT y:(15:0); CTRL s:(2:0));
BEHAVIOR
  y := r0 WHEN s = 0;
  y := r1 WHEN s = 1;
  y := r2 WHEN s = 2;
  y := r3 WHEN s = 3;
  y := im WHEN s = 4;
END;

MODULE bmux (IN r0:(15:0); IN im:(15:0); OUT y:(15:0); CTRL s:(2:0));
BEHAVIOR
  y := r0 WHEN s = 0;
  y := im WHEN s = 1;
END;

MODULE alu (IN a:(15:0); IN b:(15:0); OUT y:(15:0); CTRL f:(1:0));
BEHAVIOR
  y := a + b WHEN f = 0;
  y := a & b WHEN f = 1;
  y := a     WHEN f = 2;
  y := ~a    WHEN f = 3;
END;

-- Destination decoder (one-hot load enables from the dst field).
MODULE ddec (IN d:(2:0);
             OUT ac:(0:0); OUT sp:(0:0); OUT tir:(0:0); OUT mar:(0:0);
             OUT mbr:(0:0); OUT pc:(0:0));
BEHAVIOR
  ac  := 1 WHEN d = 1;
  sp  := 1 WHEN d = 2;
  tir := 1 WHEN d = 3;
  mar := 1 WHEN d = 4;
  mbr := 1 WHEN d = 5;
  pc  := 1 WHEN d = 6;
END;

-- Zero-extends the 12-bit immediate field.
MODULE izx (IN a:(11:0); OUT y:(15:0));
BEHAVIOR
  y := ZXT(a);
END;

PORT pout: OUT (15:0);

STRUCTURE
PARTS
  MIR: mir;
  AC:  AC;
  SP:  SP;
  TIR: TIR;
  MAR: MAR;
  MBR: MBR;
  PC:  PC;
  mem: mem;
  AM:  amux;
  BM:  bmux;
  ALU: alu;
  DD:  ddec;
  IZX: izx;
CONNECTIONS
  IZX.a := MIR.w(11:0);

  AM.r0 := AC.q;
  AM.r1 := SP.q;
  AM.r2 := TIR.q;
  AM.r3 := MBR.q;
  AM.im := IZX.y;
  AM.s  := MIR.w(25:23);

  BM.r0 := AC.q;
  BM.im := IZX.y;
  BM.s  := MIR.w(22:20);

  ALU.a := AM.y;
  ALU.b := BM.y;
  ALU.f := MIR.w(19:18);

  DD.d  := MIR.w(15:13);

  AC.d   := ALU.y;
  AC.ld  := DD.ac;
  SP.d   := ALU.y;
  SP.ld  := DD.sp;
  TIR.d  := ALU.y;
  TIR.ld := DD.tir;
  MAR.d  := ALU.y(11:0);
  MAR.ld := DD.mar;
  MBR.d  := mem.dout;
  MBR.ld := DD.mbr;
  PC.d   := MIR.w(11:0);
  PC.ld  := DD.pc;

  mem.addr := MAR.q;
  mem.din  := AC.q;
  mem.we   := MIR.w(12:12);

  pout := AC.q;
END;
)HDL";
  return kSource;
}

}  // namespace record::models
