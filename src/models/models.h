// Built-in HDL processor models — the six retargeting targets of the
// paper's Table 3:
//
//   demo        a small horizontally-microcoded demo datapath (paper: 439
//               extended RT templates)
//   ref         a large orthogonal reference machine (paper: 1703)
//   manocpu     M. Mano's basic computer, single-bus accumulator
//               architecture [Mano 1993] (paper: 207)
//   tanenbaum   A. Tanenbaum's Mac-1-style machine [Tanenbaum 1990]
//               (paper: 232)
//   bass_boost  a Philips-style in-house audio ASIP [Strik et al. 1995]
//               (paper: 89)
//   tms320c25   a TI TMS320C25-class fixed-point DSP [TI 1990] (paper: 356)
//
// The models are written from the cited references' architecture
// descriptions; absolute template counts depend on modelling granularity,
// so EXPERIMENTS.md reports paper-vs-measured numbers side by side.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace record::models {

struct ModelInfo {
  std::string_view name;
  std::string_view description;
  /// Paper's extended-template-base size (Table 3, column 2).
  int paper_template_count = 0;
  /// Paper's retargeting time in SPARC-20 CPU seconds (Table 3, column 3).
  double paper_retarget_seconds = 0.0;
};

/// Metadata for all six built-in models, in Table 3 order.
[[nodiscard]] const std::vector<ModelInfo>& builtin_models();

/// HDL source of a built-in model; empty view if unknown.
[[nodiscard]] std::string_view model_source(std::string_view name);

// Per-model source accessors (each defined in its own translation unit).
[[nodiscard]] std::string_view demo_source();
[[nodiscard]] std::string_view ref_source();
[[nodiscard]] std::string_view manocpu_source();
[[nodiscard]] std::string_view tanenbaum_source();
[[nodiscard]] std::string_view bass_boost_source();
[[nodiscard]] std::string_view tms320c25_source();

}  // namespace record::models
