// "demo": a small horizontally-microcoded datapath with a homogeneous
// register set — the kind of orthogonal microarchitecture where route
// enumeration forks heavily (the paper's demo model yields a 439-template
// extended base from a simple structure).
//
// Three general registers feed both ALU operand muxes; a six-function ALU
// and a memory with register-indirect and immediate addressing complete the
// datapath. The microinstruction is fully horizontal (no decoder), so almost
// every fork combination is encodable.
//
// Microinstruction word (26 bits):
//   asel 25:23  ALU A source (0 R0, 1 R1, 2 imm)
//   bsel 22:20  ALU B source (0 R0, 1 R1, 2 R2, 3 imm, 4 mem)
//   aluf 19:17  ALU fn (0 add, 1 sub, 2 pass-a, 3 mul, 4 pass-b, 5 xor)
//   dst  16:14  destination (1 R0, 2 R1, 3 R2, 4 mem, 5 PC)
//   msel 13:12  memory address source (0 imm, 1 R1, 2 R2)
//   we   11     memory write
//   imm  10:0   immediate field
#include "models/models.h"

namespace record::models {

std::string_view demo_source() {
  static constexpr std::string_view kSource = R"HDL(
PROCESSOR demo;

CONTROLLER mc (OUT w:(25:0));

REGISTER R0 (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

REGISTER R1 (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

REGISTER R2 (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

REGISTER PC (IN d:(10:0); OUT q:(10:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

MEMORY mem (IN addr:(10:0); IN din:(15:0); OUT dout:(15:0);
            CTRL we:(0:0)) SIZE 2048;
BEHAVIOR
  dout := CELL[addr];
  CELL[addr] := din WHEN we = 1;
END;

MODULE izx (IN a:(10:0); OUT y:(15:0));
BEHAVIOR
  y := ZXT(a);
END;

MODULE amux (IN r0:(15:0); IN r1:(15:0); IN im:(15:0);
             OUT y:(15:0); CTRL s:(2:0));
BEHAVIOR
  y := r0 WHEN s = 0;
  y := r1 WHEN s = 1;
  y := im WHEN s = 2;
END;

MODULE bmux (IN r0:(15:0); IN r1:(15:0); IN r2:(15:0); IN im:(15:0);
             IN m:(15:0); OUT y:(15:0); CTRL s:(2:0));
BEHAVIOR
  y := r0 WHEN s = 0;
  y := r1 WHEN s = 1;
  y := r2 WHEN s = 2;
  y := im WHEN s = 3;
  y := m  WHEN s = 4;
END;

MODULE alu (IN a:(15:0); IN b:(15:0); OUT y:(15:0); CTRL f:(2:0));
BEHAVIOR
  y := a + b WHEN f = 0;
  y := a - b WHEN f = 1;
  y := a     WHEN f = 2;
  y := a * b WHEN f = 3;
  y := b     WHEN f = 4;
  y := a ^ b WHEN f = 5;
END;

MODULE mmux (IN im:(10:0); IN r1:(10:0); IN r2:(10:0); OUT y:(10:0);
             CTRL s:(1:0));
BEHAVIOR
  y := im WHEN s = 0;
  y := r1 WHEN s = 1;
  y := r2 WHEN s = 2;
END;

MODULE ddec (IN d:(2:0);
             OUT r0:(0:0); OUT r1:(0:0); OUT r2:(0:0); OUT pc:(0:0));
BEHAVIOR
  r0 := 1 WHEN d = 1;
  r1 := 1 WHEN d = 2;
  r2 := 1 WHEN d = 3;
  pc := 1 WHEN d = 5;
END;

PORT pin: IN (15:0);
PORT pout: OUT (15:0);

STRUCTURE
PARTS
  MC:  mc;
  R0:  R0;
  R1:  R1;
  R2:  R2;
  PC:  PC;
  mem: mem;
  IZX: izx;
  AM:  amux;
  BM:  bmux;
  ALU: alu;
  MM:  mmux;
  DD:  ddec;
CONNECTIONS
  IZX.a := MC.w(10:0);

  AM.r0 := R0.q;
  AM.r1 := R1.q;
  AM.im := IZX.y;
  AM.s  := MC.w(25:23);

  BM.r0 := R0.q;
  BM.r1 := R1.q;
  BM.r2 := R2.q;
  BM.im := IZX.y;
  BM.m  := mem.dout;
  BM.s  := MC.w(22:20);

  ALU.a := AM.y;
  ALU.b := BM.y;
  ALU.f := MC.w(19:17);

  DD.d  := MC.w(16:14);

  R0.d  := ALU.y;
  R0.ld := DD.r0;
  R1.d  := ALU.y;
  R1.ld := DD.r1;
  R2.d  := ALU.y;
  R2.ld := DD.r2;
  PC.d  := MC.w(10:0);
  PC.ld := DD.pc;

  MM.im := MC.w(10:0);
  MM.r1 := R1.q(10:0);
  MM.r2 := R2.q(10:0);
  MM.s  := MC.w(13:12);

  mem.addr := MM.y;
  mem.din  := R2.q;
  mem.we   := MC.w(11:11);

  pout := R0.q;
END;
)HDL";
  return kSource;
}

}  // namespace record::models
