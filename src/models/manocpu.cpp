// M. Mano's basic computer (Computer System Architecture, 3rd ed., 1993).
//
// Single-bus accumulator architecture: the 16-bit common bus is a tristate
// bus driven by memory, DR, AC, PC and the instruction's address field;
// destinations take their inputs from the bus. Register micro-operations
// (INC, CLR, CMA) are modelled as self-transfers of AC. The control word is
// horizontal (direct fields), as the paper's ISE operates below the
// hardwired-control abstraction.
//
// Control word (28 bits):
//   bsel 24:22  bus driver select (0 none, 1 mem, 2 DR, 3 AC, 4 PC, 5 addr,
//               6 input port, 7 TR)
//   acc  21:19  AC op (0 none, 1 load, 2 inc, 3 clr, 4 cma)
//   aluf 18:17  ALU fn (0 and, 1 add, 2 pass-bus, 3 xor) followed by a
//               shifter (sh 27:26: 0 none, 1 <<1, 2 >>1); trld 25
//   drld 16     DR load
//   arld 15     AR load
//   pcc  14:13  PC op (0 none, 1 load, 2 inc)
//   we   12     memory write
//   addr 11:0   address / immediate field
#include "models/models.h"

namespace record::models {

std::string_view manocpu_source() {
  static constexpr std::string_view kSource = R"HDL(
PROCESSOR manocpu;

CONTROLLER cw (OUT w:(27:0));

REGISTER AC (IN d:(15:0); OUT q:(15:0); CTRL c:(2:0));
BEHAVIOR
  q := d      WHEN c = 1;
  q := q + 1  WHEN c = 2;
  q := 0      WHEN c = 3;
  q := ~q     WHEN c = 4;
END;

-- Temporary register (extended instruction set).
REGISTER TR (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

REGISTER DR (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

REGISTER AR (IN d:(11:0); OUT q:(11:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

REGISTER PC (IN d:(11:0); OUT q:(11:0); CTRL c:(1:0));
BEHAVIOR
  q := d     WHEN c = 1;
  q := q + 1 WHEN c = 2;
END;

MEMORY mem (IN addr:(11:0); IN din:(15:0); OUT dout:(15:0);
            CTRL we:(0:0)) SIZE 4096;
BEHAVIOR
  dout := CELL[addr];
  CELL[addr] := din WHEN we = 1;
END;

-- ALU between the bus and AC (Mano: AND, ADD, pass; XOR added by the
-- extended instruction set).
MODULE alu (IN a:(15:0); IN b:(15:0); OUT y:(15:0); CTRL f:(1:0));
BEHAVIOR
  y := a & b WHEN f = 0;
  y := a + b WHEN f = 1;
  y := b     WHEN f = 2;
  y := a ^ b WHEN f = 3;
END;

-- Shifter between the ALU and AC (Mano's shl/shr micro-operations).
MODULE shf (IN a:(15:0); OUT y:(15:0); CTRL s:(1:0));
BEHAVIOR
  y := a      WHEN s = 0;
  y := a << 1 WHEN s = 1;
  y := a >> 1 WHEN s = 2;
END;

-- Zero-extends the 12-bit address field onto the 16-bit bus.
MODULE azx (IN a:(11:0); OUT y:(15:0));
BEHAVIOR
  y := ZXT(a);
END;

-- Zero-extends the 12-bit PC onto the 16-bit bus.
MODULE pzx (IN a:(11:0); OUT y:(15:0));
BEHAVIOR
  y := ZXT(a);
END;

PORT pin: IN (15:0);
PORT pout: OUT (15:0);

STRUCTURE
PARTS
  CW:  cw;
  AC:  AC;
  TR:  TR;
  DR:  DR;
  AR:  AR;
  PC:  PC;
  mem: mem;
  ALU: alu;
  SHF: shf;
  AZX: azx;
  PZX: pzx;
BUS dbus: (15:0);
CONNECTIONS
  dbus := mem.dout WHEN CW.w(24:22) = 1;
  dbus := DR.q     WHEN CW.w(24:22) = 2;
  dbus := AC.q     WHEN CW.w(24:22) = 3;
  dbus := PZX.y    WHEN CW.w(24:22) = 4;
  dbus := AZX.y    WHEN CW.w(24:22) = 5;
  dbus := pin      WHEN CW.w(24:22) = 6;
  dbus := TR.q     WHEN CW.w(24:22) = 7;

  AZX.a    := CW.w(11:0);
  PZX.a    := PC.q;

  ALU.a    := DR.q;
  ALU.b    := dbus;
  ALU.f    := CW.w(18:17);
  SHF.a    := ALU.y;
  SHF.s    := CW.w(27:26);
  AC.d     := SHF.y;
  AC.c     := CW.w(21:19);

  TR.d     := dbus;
  TR.ld    := CW.w(25:25);

  DR.d     := dbus;
  DR.ld    := CW.w(16:16);

  AR.d     := dbus(11:0);
  AR.ld    := CW.w(15:15);

  PC.d     := dbus(11:0);
  PC.c     := CW.w(14:13);

  mem.addr := AR.q;
  mem.din  := dbus;
  mem.we   := CW.w(12:12);

  pout     := AC.q;
END;
)HDL";
  return kSource;
}

}  // namespace record::models
