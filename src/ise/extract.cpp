#include "ise/extract.h"

#include "ise/control.h"
#include "util/strings.h"

namespace record::ise {

using hdl::ModuleKind;
using netlist::InstanceId;

namespace {

/// Data width of a memory: its write-data port if present, else its first
/// read port.
int memory_data_width(const hdl::ModuleDecl& m) {
  // The CELL write transfer's rhs is a port reference (possibly nested in
  // ops); using the first IN port that is not an address is fragile, so take
  // the width of the first OUT port, falling back to the widest IN port.
  for (const hdl::PortDecl& p : m.ports)
    if (p.cls == hdl::PortClass::Out) return p.range.width();
  int w = 1;
  for (const hdl::PortDecl& p : m.ports) w = std::max(w, p.range.width());
  return w;
}

class Extractor {
 public:
  Extractor(const netlist::Netlist& nl, const ExtractOptions& options,
            util::DiagnosticSink& diags)
      : nl_(nl),
        options_(options),
        diags_(diags),
        mgr_(std::make_shared<bdd::BddManager>()),
        ctrl_(nl, *mgr_, diags),
        routes_(nl, ctrl_, *mgr_, options.limits, options.prune_unsat,
                diags) {}

  ExtractResult run() {
    ExtractResult result;
    result.base.mgr = mgr_;
    result.base.instruction_width = nl_.instruction_width();
    collect_storage(result.base);

    for (InstanceId id : nl_.sequential_instances()) {
      const netlist::Instance& in = nl_.instance(id);
      if (in.kind() == ModuleKind::Memory)
        extract_memory(id, result);
      else
        extract_register(id, result);
    }
    if (options_.include_proc_out) extract_proc_outs(result);
    result.stats.route_stats = routes_.stats();
    return result;
  }

 private:
  void collect_storage(rtl::TemplateBase& base) {
    for (InstanceId id : nl_.sequential_instances()) {
      const netlist::Instance& in = nl_.instance(id);
      rtl::StorageInfo s;
      s.name = in.name;
      switch (in.kind()) {
        case ModuleKind::Register:
          s.kind = rtl::DestKind::Register;
          break;
        case ModuleKind::ModeReg:
          s.kind = rtl::DestKind::ModeReg;
          break;
        case ModuleKind::Memory:
          s.kind = rtl::DestKind::Memory;
          break;
        default:
          continue;
      }
      if (in.kind() == ModuleKind::Memory) {
        s.width = memory_data_width(*in.decl);
        s.cells = in.decl->mem_size;
      } else {
        for (const hdl::PortDecl& p : in.decl->ports)
          if (p.cls == hdl::PortClass::Out) s.width = p.range.width();
      }
      s.readable = true;
      base.storage.push_back(std::move(s));
      if (in.kind() == ModuleKind::Register && in.name == "PC")
        base.branch_delay_slots = in.decl->write_delay;
    }
    for (const hdl::ProcPortDecl& p : nl_.proc_ports()) {
      if (p.is_input) {
        base.in_ports.push_back(rtl::PortInInfo{p.name, p.range.width()});
      } else {
        rtl::StorageInfo s;
        s.name = p.name;
        s.kind = rtl::DestKind::ProcOut;
        s.width = p.range.width();
        s.readable = false;
        base.storage.push_back(std::move(s));
      }
    }
  }

  void add_templates(std::vector<Route> routes, rtl::DestKind kind,
                     const std::string& dest, int dest_width,
                     rtl::RTNodePtr addr, ExtractResult& result) {
    result.stats.raw_routes += routes.size();
    for (Route& r : routes) {
      if (options_.prune_unsat && r.cond == bdd::kFalse) {
        ++result.stats.unsat_discarded;
        continue;
      }
      rtl::RTTemplate t;
      t.dest_kind = kind;
      t.dest = dest;
      t.dest_width = dest_width;
      t.addr = addr ? addr->clone() : nullptr;
      t.value = std::move(r.tree);
      t.cond = r.cond;
      t.provenance = "ise";
      if (!result.base.add_unique(std::move(t))) ++result.stats.duplicates;
    }
  }

  void extract_register(InstanceId id, ExtractResult& result) {
    const netlist::Instance& in = nl_.instance(id);
    rtl::DestKind kind = in.kind() == ModuleKind::ModeReg
                             ? rtl::DestKind::ModeReg
                             : rtl::DestKind::Register;
    int width = 0;
    for (const hdl::PortDecl& p : in.decl->ports)
      if (p.cls == hdl::PortClass::Out) width = p.range.width();

    for (const hdl::Transfer& t : in.decl->transfers) {
      if (t.is_cell_write()) continue;
      ++result.stats.destinations;
      bdd::Ref cond =
          t.guard ? ctrl_.guard_bdd(id, *t.guard) : bdd::kTrue;
      if (options_.prune_unsat && cond == bdd::kFalse) {
        ++result.stats.unsat_discarded;
        continue;
      }
      std::vector<Route> routes = routes_.enumerate_expr(
          id, *t.rhs, width, cond, options_.limits.max_depth);
      add_templates(std::move(routes), kind, in.name, width, nullptr, result);
    }
  }

  void extract_memory(InstanceId id, ExtractResult& result) {
    const netlist::Instance& in = nl_.instance(id);
    int data_width = memory_data_width(*in.decl);
    for (const hdl::Transfer& t : in.decl->transfers) {
      if (!t.is_cell_write()) continue;
      ++result.stats.destinations;
      bdd::Ref cond =
          t.guard ? ctrl_.guard_bdd(id, *t.guard) : bdd::kTrue;
      if (options_.prune_unsat && cond == bdd::kFalse) {
        ++result.stats.unsat_discarded;
        continue;
      }
      int addr_width = 16;
      if (t.cell_addr->kind == hdl::Expr::Kind::PortRef) {
        const hdl::PortDecl* p = in.decl->find_port(t.cell_addr->name);
        if (p) addr_width = p->range.width();
      }
      std::vector<Route> addr_routes = routes_.enumerate_expr(
          id, *t.cell_addr, addr_width, cond, options_.limits.max_depth);
      for (Route& a : addr_routes) {
        std::vector<Route> value_routes = routes_.enumerate_expr(
            id, *t.rhs, data_width, a.cond, options_.limits.max_depth);
        add_templates(std::move(value_routes), rtl::DestKind::Memory, in.name,
                      data_width, std::move(a.tree), result);
      }
    }
  }

  void extract_proc_outs(ExtractResult& result) {
    for (const hdl::ProcPortDecl& p : nl_.proc_ports()) {
      if (p.is_input) continue;
      const netlist::Driver* d = nl_.proc_out_driver(p.name);
      if (!d) {
        diags_.warning(p.loc,
                       util::fmt("primary output '{}' is undriven", p.name));
        continue;
      }
      ++result.stats.destinations;
      std::vector<Route> routes =
          routes_.enumerate_source(d->source, p.range.width(), bdd::kTrue,
                                   options_.limits.max_depth);
      if (d->source.has_slice) {
        // enumerate_source applies slices internally for every kind.
      }
      add_templates(std::move(routes), rtl::DestKind::ProcOut, p.name,
                    p.range.width(), nullptr, result);
    }
  }

  const netlist::Netlist& nl_;
  ExtractOptions options_;
  util::DiagnosticSink& diags_;
  std::shared_ptr<bdd::BddManager> mgr_;
  ControlAnalyzer ctrl_;
  RouteEnumerator routes_;
};

}  // namespace

ExtractResult extract(const netlist::Netlist& nl,
                      const ExtractOptions& options,
                      util::DiagnosticSink& diags) {
  Extractor ex(nl, options, diags);
  return ex.run();
}

}  // namespace record::ise
