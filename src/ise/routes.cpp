#include "ise/routes.h"

#include <algorithm>

#include "util/strings.h"

namespace record::ise {

using hdl::Expr;
using hdl::ModuleKind;
using hdl::PortClass;
using netlist::InstanceId;
using netlist::NetSource;
using util::fmt;

rtl::OpSig RouteEnumerator::slice_op(int msb, int lsb) {
  return rtl::slice_op_sig(msb, lsb);
}

bool RouteEnumerator::conjoin(bdd::Ref& cond, bdd::Ref extra) {
  cond = mgr_.land(cond, extra);
  if (prune_unsat_ && cond == bdd::kFalse) {
    ++stats_.unsat_pruned;
    return false;
  }
  return true;
}

Route RouteEnumerator::slice_route(Route r, int msb, int lsb) const {
  // Slicing specialises by node kind so immediate fields and constants stay
  // first-class leaves rather than becoming opaque slice operators.
  rtl::RTNode& n = *r.tree;
  if (msb == n.width - 1 && lsb == 0) return r;  // full-width slice
  // A low slice of an extension that stays within the pre-extension width
  // is the identity on those bits: bits(msb:0) of SXT/ZXT(x) == bits of x.
  if (n.kind == rtl::RTNode::Kind::Op &&
      (n.op.kind == hdl::OpKind::Sxt || n.op.kind == hdl::OpKind::Zxt) &&
      n.children.size() == 1 && lsb == 0 &&
      msb < n.children[0]->width) {
    Route inner{std::move(n.children[0]), r.cond};
    return slice_route(std::move(inner), msb, lsb);
  }
  switch (n.kind) {
    case rtl::RTNode::Kind::Imm: {
      // Only an in-range slice stays a first-class immediate leaf; a slice
      // reaching past the field's bits (previously an out-of-bounds read of
      // imm_bits) keeps the generic slice operator below, which preserves
      // the result width.
      if (msb < static_cast<int>(n.imm_bits.size())) {
        std::vector<int> bits(n.imm_bits.begin() + lsb,
                              n.imm_bits.begin() + msb + 1);
        r.tree = rtl::make_imm(std::move(bits));
        return r;
      }
      break;  // fall through to the opaque slice-operator case
    }
    case rtl::RTNode::Kind::HardConst: {
      auto v = static_cast<std::uint64_t>(n.value);
      std::uint64_t sliced = (v >> lsb);
      int w = msb - lsb + 1;
      if (w < 64) sliced &= (1ull << w) - 1;
      r.tree = rtl::make_hard_const(static_cast<std::int64_t>(sliced), w);
      return r;
    }
    default:
      break;
  }
  std::vector<rtl::RTNodePtr> kids;
  kids.push_back(std::move(r.tree));
  r.tree = rtl::make_op(slice_op(msb, lsb), std::move(kids));
  return r;
}

int RouteEnumerator::expr_width(InstanceId inst, const Expr& e,
                                int context_width) const {
  const netlist::Instance& in = nl_.instance(inst);
  switch (e.kind) {
    case Expr::Kind::PortRef: {
      const hdl::PortDecl* p = in.decl->find_port(e.name);
      return p ? p->range.width() : context_width;
    }
    case Expr::Kind::Slice:
      return e.slice.width();
    case Expr::Kind::Const:
      return context_width;
    case Expr::Kind::CellRead:
      return context_width;
    case Expr::Kind::Unary:
      if (e.op == hdl::OpKind::Sxt || e.op == hdl::OpKind::Zxt)
        return context_width;
      return expr_width(inst, *e.args[0], context_width);
    case Expr::Kind::Binary: {
      int w0 = expr_width(inst, *e.args[0], context_width);
      int w1 = expr_width(inst, *e.args[1], context_width);
      return std::max(w0, w1);
    }
    case Expr::Kind::Call:
      return context_width;
  }
  return context_width;
}

std::vector<Route> RouteEnumerator::enumerate_expr(InstanceId inst,
                                                   const Expr& expr,
                                                   int width_hint,
                                                   bdd::Ref cond, int depth) {
  const netlist::Instance& in = nl_.instance(inst);
  std::vector<Route> out;
  switch (expr.kind) {
    case Expr::Kind::Const:
      out.push_back(Route{rtl::make_hard_const(expr.value, width_hint), cond});
      return out;

    case Expr::Kind::PortRef: {
      const hdl::PortDecl* p = in.decl->find_port(expr.name);
      if (!p) return out;
      if (p->cls == PortClass::Out) {
        // Self reference in a sequential module (e.g. q := q + 1).
        out.push_back(
            Route{rtl::make_reg_read(in.name, p->range.width()), cond});
        return out;
      }
      return enumerate_in_port(inst, expr.name, cond, depth);
    }

    case Expr::Kind::Slice: {
      const Expr& base = *expr.args[0];
      int base_width = expr_width(inst, base, width_hint);
      std::vector<Route> inner =
          enumerate_expr(inst, base, base_width, cond, depth);
      for (Route& r : inner)
        out.push_back(slice_route(std::move(r), expr.slice.msb,
                                  expr.slice.lsb));
      return out;
    }

    case Expr::Kind::CellRead: {
      // Memory read: MemLoad node whose child is the address tree.
      if (in.kind() != ModuleKind::Memory) return out;
      const hdl::PortDecl* addr_port = nullptr;  // width via expr_width
      (void)addr_port;
      int addr_width = expr_width(inst, *expr.args[0], width_hint);
      std::vector<Route> addrs =
          enumerate_expr(inst, *expr.args[0], addr_width, cond, depth);
      for (Route& a : addrs)
        out.push_back(Route{
            rtl::make_mem_load(in.name, width_hint, std::move(a.tree)),
            a.cond});
      return out;
    }

    case Expr::Kind::Unary: {
      int child_width =
          (expr.op == hdl::OpKind::Sxt || expr.op == hdl::OpKind::Zxt)
              ? expr_width(inst, *expr.args[0], width_hint)
              : expr_width(inst, *expr.args[0], width_hint);
      std::vector<Route> kids =
          enumerate_expr(inst, *expr.args[0], child_width, cond, depth);
      rtl::OpSig sig{expr.op, "", width_hint};
      for (Route& k : kids) {
        std::vector<rtl::RTNodePtr> cs;
        cs.push_back(std::move(k.tree));
        out.push_back(Route{rtl::make_op(sig, std::move(cs)), k.cond});
      }
      return out;
    }

    case Expr::Kind::Binary: {
      int w0 = expr_width(inst, *expr.args[0], width_hint);
      int w1 = expr_width(inst, *expr.args[1], width_hint);
      std::vector<Route> lhs =
          enumerate_expr(inst, *expr.args[0], w0, cond, depth);
      rtl::OpSig sig{expr.op, "", width_hint};
      for (Route& l : lhs) {
        std::vector<Route> rhs =
            enumerate_expr(inst, *expr.args[1], w1, l.cond, depth);
        for (Route& r : rhs) {
          if (out.size() >= limits_.max_routes_per_point) {
            ++stats_.cap_pruned;
            return out;
          }
          std::vector<rtl::RTNodePtr> cs;
          cs.push_back(l.tree->clone());
          cs.push_back(std::move(r.tree));
          out.push_back(Route{rtl::make_op(sig, std::move(cs)), r.cond});
        }
      }
      return out;
    }

    case Expr::Kind::Call: {
      rtl::OpSig sig{hdl::OpKind::Custom, expr.name, width_hint};
      // Cross-product over argument alternatives, threading conditions.
      std::vector<std::vector<rtl::RTNodePtr>> partial_trees;
      std::vector<bdd::Ref> partial_conds;
      partial_trees.emplace_back();
      partial_conds.push_back(cond);
      for (const hdl::ExprPtr& arg : expr.args) {
        int aw = expr_width(inst, *arg, width_hint);
        std::vector<std::vector<rtl::RTNodePtr>> next_trees;
        std::vector<bdd::Ref> next_conds;
        for (std::size_t i = 0; i < partial_trees.size(); ++i) {
          std::vector<Route> alts =
              enumerate_expr(inst, *arg, aw, partial_conds[i], depth);
          for (Route& alt : alts) {
            if (next_trees.size() >= limits_.max_routes_per_point) {
              ++stats_.cap_pruned;
              break;
            }
            std::vector<rtl::RTNodePtr> tree_list;
            tree_list.reserve(partial_trees[i].size() + 1);
            for (const rtl::RTNodePtr& t : partial_trees[i])
              tree_list.push_back(t->clone());
            tree_list.push_back(std::move(alt.tree));
            next_trees.push_back(std::move(tree_list));
            next_conds.push_back(alt.cond);
          }
        }
        partial_trees = std::move(next_trees);
        partial_conds = std::move(next_conds);
      }
      for (std::size_t i = 0; i < partial_trees.size(); ++i)
        out.push_back(
            Route{rtl::make_op(sig, std::move(partial_trees[i])),
                  partial_conds[i]});
      return out;
    }
  }
  return out;
}

std::vector<Route> RouteEnumerator::enumerate_in_port(InstanceId inst,
                                                      std::string_view port,
                                                      bdd::Ref cond,
                                                      int depth) {
  const netlist::Driver* d = nl_.port_driver(inst, port);
  if (!d) return {};
  int width = nl_.port_width(inst, port);
  // enumerate_source applies d->source's slice internally (every source
  // kind); applying it here again would re-slice an already-sliced route —
  // an identity for lsb = 0 connections, but out of range for fields like
  // IW.w(10:6), whose immediate leaves then pointed at garbage word bits.
  return enumerate_source(d->source, width, cond, depth);
}

std::vector<Route> RouteEnumerator::enumerate_source(const NetSource& src,
                                                     int width_hint,
                                                     bdd::Ref cond,
                                                     int depth) {
  std::vector<Route> out;
  switch (src.kind) {
    case NetSource::Kind::Const: {
      int w = src.has_slice ? src.slice.width() : width_hint;
      out.push_back(Route{rtl::make_hard_const(src.value, w), cond});
      return out;
    }
    case NetSource::Kind::ProcPort: {
      const hdl::ProcPortDecl* p = nl_.model().find_proc_port(src.port);
      int w = p ? p->range.width() : width_hint;
      Route r{rtl::make_port_in(src.port, w), cond};
      if (src.has_slice)
        r = slice_route(std::move(r), src.slice.msb, src.slice.lsb);
      out.push_back(std::move(r));
      return out;
    }
    case NetSource::Kind::InstancePort: {
      std::vector<Route> routes =
          enumerate_out_port(src.inst, src.port, cond, depth);
      if (!src.has_slice) return routes;
      for (Route& r : routes)
        out.push_back(
            slice_route(std::move(r), src.slice.msb, src.slice.lsb));
      return out;
    }
    case NetSource::Kind::Bus: {
      const std::vector<netlist::Driver>& drivers = nl_.bus_drivers(src.port);
      int w = nl_.bus_width(src.port);
      for (std::size_t i = 0; i < drivers.size(); ++i) {
        bdd::Ref c = cond;
        bdd::Ref enable = drivers[i].guard
                              ? ctrl_.structural_guard_bdd(*drivers[i].guard)
                              : bdd::kTrue;
        if (!conjoin(c, enable)) continue;
        // Bus contention: all rival drivers must be disabled.
        bool contention = false;
        for (std::size_t j = 0; j < drivers.size(); ++j) {
          if (j == i || !drivers[j].guard) continue;
          bdd::Ref rival = ctrl_.structural_guard_bdd(*drivers[j].guard);
          c = mgr_.land(c, mgr_.lnot(rival));
          if (prune_unsat_ && c == bdd::kFalse) {
            ++stats_.bus_contention_pruned;
            contention = true;
            break;
          }
        }
        if (contention) continue;
        // enumerate_source applies the driver's own slice internally.
        std::vector<Route> routes =
            enumerate_source(drivers[i].source, w, c, depth);
        for (Route& r : routes) {
          if (src.has_slice)
            r = slice_route(std::move(r), src.slice.msb, src.slice.lsb);
          if (out.size() >= limits_.max_routes_per_point) {
            ++stats_.cap_pruned;
            return out;
          }
          out.push_back(std::move(r));
        }
      }
      return out;
    }
  }
  return out;
}

std::vector<Route> RouteEnumerator::enumerate_out_port(InstanceId inst,
                                                       std::string_view port,
                                                       bdd::Ref cond,
                                                       int depth) {
  std::vector<Route> out;
  if (depth <= 0) {
    ++stats_.depth_pruned;
    return out;
  }
  const netlist::Instance& in = nl_.instance(inst);
  const hdl::PortDecl* decl = in.decl->find_port(port);
  int width = decl ? decl->range.width() : 1;

  switch (in.kind()) {
    case ModuleKind::Controller: {
      // Instruction word used as data: an immediate field.
      std::vector<int> bits(static_cast<std::size_t>(width));
      for (int i = 0; i < width; ++i) bits[static_cast<std::size_t>(i)] = i;
      out.push_back(Route{rtl::make_imm(std::move(bits)), cond});
      return out;
    }
    case ModuleKind::Register:
    case ModuleKind::ModeReg:
      out.push_back(Route{rtl::make_reg_read(in.name, width), cond});
      return out;
    case ModuleKind::Memory:
    case ModuleKind::Combinational: {
      for (const hdl::Transfer& t : in.decl->transfers) {
        if (t.is_cell_write() || t.target_port != port) continue;
        bdd::Ref c = cond;
        if (t.guard && !conjoin(c, ctrl_.guard_bdd(inst, *t.guard))) continue;
        std::vector<Route> routes =
            enumerate_expr(inst, *t.rhs, width, c, depth - 1);
        for (Route& r : routes) {
          if (out.size() >= limits_.max_routes_per_point) {
            ++stats_.cap_pruned;
            return out;
          }
          out.push_back(std::move(r));
        }
      }
      return out;
    }
  }
  return out;
}

}  // namespace record::ise
