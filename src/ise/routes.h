// Enumeration of data transfer routes (paper section 2).
//
// For each RT destination a backwards netlist traversal searches for every
// route that can transport data from source registers, memories, ports,
// immediate fields or hardwired constants to the destination within a single
// machine cycle. Traversal forks at every behaviour alternative of every
// combinational module and at every tristate-bus driver; each complete route
// is a tree pattern (rtl::RTNode) with an accumulated BDD execution
// condition. Unsatisfiable conditions are pruned eagerly.
#pragma once

#include <string_view>
#include <vector>

#include "bdd/bdd.h"
#include "ise/control.h"
#include "netlist/netlist.h"
#include "rtl/template.h"
#include "util/diagnostics.h"

namespace record::ise {

struct RouteLimits {
  int max_depth = 32;                      // module traversals per route
  std::size_t max_routes_per_point = 4096; // fork cap per enumeration point
};

struct Route {
  rtl::RTNodePtr tree;
  bdd::Ref cond = bdd::kTrue;
};

struct RouteStats {
  std::size_t unsat_pruned = 0;   // forks dropped by condition pruning
  std::size_t depth_pruned = 0;   // forks dropped by the depth bound
  std::size_t cap_pruned = 0;     // forks dropped by the route cap
  std::size_t bus_contention_pruned = 0;
};

class RouteEnumerator {
 public:
  RouteEnumerator(const netlist::Netlist& nl, ControlAnalyzer& ctrl,
                  bdd::BddManager& mgr, const RouteLimits& limits,
                  bool prune_unsat, util::DiagnosticSink& diags)
      : nl_(nl),
        ctrl_(ctrl),
        mgr_(mgr),
        limits_(limits),
        prune_unsat_(prune_unsat),
        diags_(diags) {}

  /// Routes producing the value of `expr` evaluated in the behaviour context
  /// of `inst`, under accumulated condition `cond`.
  [[nodiscard]] std::vector<Route> enumerate_expr(netlist::InstanceId inst,
                                                  const hdl::Expr& expr,
                                                  int width_hint,
                                                  bdd::Ref cond, int depth);

  /// Routes producing the value arriving at `inst`'s IN port `port`.
  [[nodiscard]] std::vector<Route> enumerate_in_port(netlist::InstanceId inst,
                                                     std::string_view port,
                                                     bdd::Ref cond, int depth);

  /// Routes producing the value of a resolved net source.
  [[nodiscard]] std::vector<Route> enumerate_source(
      const netlist::NetSource& src, int width_hint, bdd::Ref cond,
      int depth);

  [[nodiscard]] const RouteStats& stats() const { return stats_; }

  /// Canonical operator name for a bit-slice used as data (e.g. storing the
  /// high accumulator half). Shared with IR lowering so patterns match.
  [[nodiscard]] static rtl::OpSig slice_op(int msb, int lsb);

 private:
  [[nodiscard]] std::vector<Route> enumerate_out_port(
      netlist::InstanceId inst, std::string_view port, bdd::Ref cond,
      int depth);
  [[nodiscard]] Route slice_route(Route r, int msb, int lsb) const;
  [[nodiscard]] int expr_width(netlist::InstanceId inst, const hdl::Expr& e,
                               int context_width) const;
  [[nodiscard]] bool conjoin(bdd::Ref& cond, bdd::Ref extra);

  const netlist::Netlist& nl_;
  ControlAnalyzer& ctrl_;
  bdd::BddManager& mgr_;
  RouteLimits limits_;
  bool prune_unsat_;
  util::DiagnosticSink& diags_;
  RouteStats stats_;
};

}  // namespace record::ise
