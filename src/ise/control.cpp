#include "ise/control.h"

#include "util/strings.h"

namespace record::ise {

using hdl::Cond;
using hdl::Expr;
using hdl::ModuleKind;
using hdl::PortClass;
using netlist::InstanceId;
using netlist::NetSource;
using util::fmt;

ControlAnalyzer::ControlAnalyzer(const netlist::Netlist& nl,
                                 bdd::BddManager& mgr,
                                 util::DiagnosticSink& diags)
    : nl_(nl), mgr_(mgr), diags_(diags) {
  first_instr_var_ = mgr_.var_count();
  for (int k = 0; k < nl_.instruction_width(); ++k)
    (void)mgr_.new_var(fmt("I[{}]", k));
}

bool ControlAnalyzer::is_instruction_var(int v) const {
  return v >= first_instr_var_ &&
         v < first_instr_var_ + nl_.instruction_width();
}

bool ControlAnalyzer::is_mode_var(int v) const {
  return mgr_.var_name(v).rfind("M:", 0) == 0;
}

bool ControlAnalyzer::is_dynamic_var(int v) const {
  return !is_instruction_var(v) && !is_mode_var(v);
}

int ControlAnalyzer::instruction_var(int k) const {
  return first_instr_var_ + k;
}

bdd::BitVec ControlAnalyzer::dynamic_bits(const std::string& tag, int width) {
  auto it = dynamic_memo_.find(tag);
  if (it != dynamic_memo_.end()) return it->second;
  std::vector<bdd::Ref> bits(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i)
    bits[static_cast<std::size_t>(i)] =
        mgr_.var(mgr_.new_var(fmt("{}[{}]", tag, i)));
  bdd::BitVec vec(std::move(bits));
  dynamic_memo_.emplace(tag, vec);
  return vec;
}

bdd::BitVec ControlAnalyzer::apply_slice(const bdd::BitVec& bits,
                                         bool has_slice,
                                         hdl::BitRange slice) {
  if (!has_slice) return bits;
  return bits.slice(slice.msb, slice.lsb);
}

bdd::BitVec ControlAnalyzer::out_port_bits(InstanceId inst,
                                           std::string_view port) {
  const netlist::Instance& in = nl_.instance(inst);
  std::string key = in.name + "." + std::string(port);
  if (auto it = out_memo_.find(key); it != out_memo_.end()) return it->second;

  const hdl::PortDecl* decl = in.decl->find_port(port);
  int width = decl ? decl->range.width() : 1;

  if (in_progress_.count(key)) {
    if (warned_.insert("cyc:" + key).second)
      diags_.warning({}, fmt("combinational cycle through '{}'; treating as "
                             "dynamic signal",
                             key));
    return dynamic_bits("S:cyc:" + key, width);
  }

  bdd::BitVec result;
  switch (in.kind()) {
    case ModuleKind::Controller: {
      std::vector<bdd::Ref> bits(static_cast<std::size_t>(width));
      for (int i = 0; i < width; ++i)
        bits[static_cast<std::size_t>(i)] = mgr_.var(instruction_var(i));
      result = bdd::BitVec(std::move(bits));
      break;
    }
    case ModuleKind::ModeReg:
      result = dynamic_bits("M:" + in.name, width);
      break;
    case ModuleKind::Register:
    case ModuleKind::Memory:
      // Data storage read as a control signal: data-dependent (e.g. status
      // flags feeding conditional-branch control).
      result = dynamic_bits("S:" + key, width);
      break;
    case ModuleKind::Combinational: {
      in_progress_.insert(key);
      result = combinational_out_bits(inst, port);
      in_progress_.erase(key);
      break;
    }
  }
  out_memo_.emplace(key, result);
  return result;
}

bdd::BitVec ControlAnalyzer::combinational_out_bits(InstanceId inst,
                                                    std::string_view port) {
  const netlist::Instance& in = nl_.instance(inst);
  const hdl::PortDecl* decl = in.decl->find_port(port);
  int width = decl ? decl->range.width() : 1;
  std::vector<bdd::Ref> bits(static_cast<std::size_t>(width), bdd::kFalse);
  for (const hdl::Transfer& t : in.decl->transfers) {
    if (t.is_cell_write() || t.target_port != port) continue;
    bdd::Ref g = t.guard ? guard_bdd(inst, *t.guard) : bdd::kTrue;
    if (g == bdd::kFalse) continue;
    bdd::BitVec v = expr_bits(inst, *t.rhs, width);
    for (int i = 0; i < width && i < v.width(); ++i)
      bits[static_cast<std::size_t>(i)] =
          mgr_.lor(bits[static_cast<std::size_t>(i)], mgr_.land(g, v.bit(i)));
  }
  return bdd::BitVec(std::move(bits));
}

bdd::BitVec ControlAnalyzer::expr_bits(InstanceId inst, const Expr& e,
                                       int width_hint) {
  const netlist::Instance& in = nl_.instance(inst);
  switch (e.kind) {
    case Expr::Kind::Const:
      return bdd::BitVec::constant(static_cast<std::uint64_t>(e.value),
                                   width_hint);
    case Expr::Kind::PortRef: {
      const hdl::PortDecl* p = in.decl->find_port(e.name);
      if (!p) return dynamic_bits("S:bad:" + in.name + "." + e.name, width_hint);
      if (p->cls == PortClass::Out) return out_port_bits(inst, e.name);
      return in_port_bits(inst, e.name);
    }
    case Expr::Kind::Slice: {
      bdd::BitVec inner = expr_bits(inst, *e.args[0], e.slice.msb + 1);
      if (e.slice.msb >= inner.width())
        return dynamic_bits(fmt("S:slice:{}.{}", in.name, opaque_counter_++),
                            e.slice.width());
      return inner.slice(e.slice.msb, e.slice.lsb);
    }
    case Expr::Kind::CellRead:
    case Expr::Kind::Unary:
    case Expr::Kind::Binary:
    case Expr::Kind::Call:
      // Arithmetic inside control paths is opaque: its bits are fresh
      // unknowns. (Decoders are expected to use case-style guarded constant
      // assignments, which stay fully symbolic.)
      return dynamic_bits(fmt("S:opaque:{}.{}", in.name, opaque_counter_++),
                          width_hint);
  }
  return bdd::BitVec::constant(0, width_hint);
}

bdd::BitVec ControlAnalyzer::in_port_bits(InstanceId inst,
                                          std::string_view port) {
  const netlist::Instance& in = nl_.instance(inst);
  const hdl::PortDecl* decl = in.decl->find_port(port);
  int width = decl ? decl->range.width() : 1;
  const netlist::Driver* d = nl_.port_driver(inst, port);
  if (!d) {
    std::string key = in.name + "." + std::string(port);
    if (warned_.insert("undriven:" + key).second)
      diags_.warning({}, fmt("control port '{}' is undriven", key));
    return dynamic_bits("U:" + key, width);
  }
  bdd::BitVec bits = source_bits(d->source, width);
  return apply_slice(bits, d->source.has_slice, d->source.slice);
}

bdd::BitVec ControlAnalyzer::source_bits(const NetSource& src,
                                         int width_hint) {
  switch (src.kind) {
    case NetSource::Kind::Const: {
      int w = src.has_slice ? src.slice.width() : width_hint;
      return bdd::BitVec::constant(static_cast<std::uint64_t>(src.value), w);
    }
    case NetSource::Kind::ProcPort: {
      const hdl::ProcPortDecl* p = nl_.model().find_proc_port(src.port);
      int w = p ? p->range.width() : width_hint;
      return dynamic_bits("S:@" + src.port, w);
    }
    case NetSource::Kind::InstancePort:
      return out_port_bits(src.inst, src.port);
    case NetSource::Kind::Bus: {
      const std::vector<netlist::Driver>& drivers = nl_.bus_drivers(src.port);
      int w = nl_.bus_width(src.port);
      if (drivers.size() == 1) {
        const netlist::Driver& d = drivers.front();
        bdd::BitVec bits = source_bits(d.source, w);
        return apply_slice(bits, d.source.has_slice, d.source.slice);
      }
      // Control through a multi-driver bus: merge as OR of enabled values.
      std::vector<bdd::Ref> bits(static_cast<std::size_t>(w), bdd::kFalse);
      for (const netlist::Driver& d : drivers) {
        bdd::Ref en =
            d.guard ? structural_guard_bdd(*d.guard) : bdd::kTrue;
        bdd::BitVec v = apply_slice(source_bits(d.source, w),
                                    d.source.has_slice, d.source.slice);
        for (int i = 0; i < w && i < v.width(); ++i)
          bits[static_cast<std::size_t>(i)] =
              mgr_.lor(bits[static_cast<std::size_t>(i)],
                       mgr_.land(en, v.bit(i)));
      }
      return bdd::BitVec(std::move(bits));
    }
  }
  return bdd::BitVec::constant(0, width_hint);
}

bdd::Ref ControlAnalyzer::guard_bdd(InstanceId inst, const Cond& c) {
  switch (c.kind) {
    case Cond::Kind::True:
      return bdd::kTrue;
    case Cond::Kind::Cmp: {
      const netlist::Instance& in = nl_.instance(inst);
      const hdl::PortDecl* p = in.decl->find_port(c.port);
      bdd::BitVec bits;
      if (p && p->cls == PortClass::Out)
        bits = out_port_bits(inst, c.port);
      else
        bits = in_port_bits(inst, c.port);
      bits = apply_slice(bits, c.has_slice, c.slice);
      bdd::Ref eq =
          bits.equals_const(mgr_, static_cast<std::uint64_t>(c.value));
      return c.neq ? mgr_.lnot(eq) : eq;
    }
    case Cond::Kind::And: {
      bdd::Ref r = bdd::kTrue;
      for (const hdl::CondPtr& a : c.args) r = mgr_.land(r, guard_bdd(inst, *a));
      return r;
    }
    case Cond::Kind::Or: {
      bdd::Ref r = bdd::kFalse;
      for (const hdl::CondPtr& a : c.args) r = mgr_.lor(r, guard_bdd(inst, *a));
      return r;
    }
    case Cond::Kind::Not:
      return mgr_.lnot(guard_bdd(inst, *c.args[0]));
  }
  return bdd::kTrue;
}

bdd::Ref ControlAnalyzer::structural_guard_bdd(const Cond& c) {
  switch (c.kind) {
    case Cond::Kind::True:
      return bdd::kTrue;
    case Cond::Kind::Cmp: {
      InstanceId inst = nl_.find_instance(c.inst);
      if (inst < 0) {
        diags_.error(c.loc, fmt("guard references unknown instance '{}'",
                                c.inst));
        return bdd::kFalse;
      }
      bdd::BitVec bits = out_port_bits(inst, c.port);
      bits = apply_slice(bits, c.has_slice, c.slice);
      bdd::Ref eq =
          bits.equals_const(mgr_, static_cast<std::uint64_t>(c.value));
      return c.neq ? mgr_.lnot(eq) : eq;
    }
    case Cond::Kind::And: {
      bdd::Ref r = bdd::kTrue;
      for (const hdl::CondPtr& a : c.args)
        r = mgr_.land(r, structural_guard_bdd(*a));
      return r;
    }
    case Cond::Kind::Or: {
      bdd::Ref r = bdd::kFalse;
      for (const hdl::CondPtr& a : c.args)
        r = mgr_.lor(r, structural_guard_bdd(*a));
      return r;
    }
    case Cond::Kind::Not:
      return mgr_.lnot(structural_guard_bdd(*c.args[0]));
  }
  return bdd::kTrue;
}

}  // namespace record::ise
