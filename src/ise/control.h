// Control-signal analysis (paper section 2, "Analysis of control signals").
//
// Every module control port is traced backwards through the netlist — across
// wires, buses and random-logic decoder modules — to the primary control
// sources: the instruction word and mode registers. Signals are represented
// bit-wise as BDDs (bdd::BitVec), so arbitrary decoder logic composes
// symbolically. Guard conditions ("f = 2") then become BDDs over:
//
//   I[k]          instruction-word bit k
//   M:<inst>[k]   bit k of mode register <inst>
//   S:...[k]      dynamic (data-dependent) bits: register contents, memory
//                 outputs, primary inputs, opaque arithmetic — free variables
//                 that make e.g. condition-code-dependent branches expressible
//
// Unsatisfiable template conditions (encoding conflicts, bus contention) are
// pruned by the extractor using these BDDs.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "bdd/bdd.h"
#include "hdl/ast.h"
#include "netlist/netlist.h"
#include "util/diagnostics.h"

namespace record::ise {

class ControlAnalyzer {
 public:
  ControlAnalyzer(const netlist::Netlist& nl, bdd::BddManager& mgr,
                  util::DiagnosticSink& diags);

  /// Symbolic per-bit value of an instance OUT port.
  [[nodiscard]] bdd::BitVec out_port_bits(netlist::InstanceId inst,
                                          std::string_view port);

  /// Symbolic value arriving at an instance IN/CTRL port (resolves its
  /// driver; undriven ports yield fresh dynamic bits and a warning).
  [[nodiscard]] bdd::BitVec in_port_bits(netlist::InstanceId inst,
                                         std::string_view port);

  /// BDD of a module-behaviour guard evaluated in the context of `inst`.
  [[nodiscard]] bdd::Ref guard_bdd(netlist::InstanceId inst,
                                   const hdl::Cond& guard);

  /// BDD of a structural guard (bus-driver WHEN clause; references are
  /// `instance.port`).
  [[nodiscard]] bdd::Ref structural_guard_bdd(const hdl::Cond& guard);

  /// Variable classification (by the naming scheme above).
  [[nodiscard]] bool is_instruction_var(int v) const;
  [[nodiscard]] bool is_mode_var(int v) const;
  [[nodiscard]] bool is_dynamic_var(int v) const;

  /// Index of the BDD variable for instruction-word bit k.
  [[nodiscard]] int instruction_var(int k) const;

  [[nodiscard]] bdd::BddManager& manager() { return mgr_; }

 private:
  [[nodiscard]] bdd::BitVec source_bits(const netlist::NetSource& src,
                                        int width_hint);
  [[nodiscard]] bdd::BitVec dynamic_bits(const std::string& tag, int width);
  [[nodiscard]] bdd::BitVec combinational_out_bits(netlist::InstanceId inst,
                                                   std::string_view port);
  [[nodiscard]] bdd::BitVec expr_bits(netlist::InstanceId inst,
                                      const hdl::Expr& e, int width_hint);
  [[nodiscard]] static bdd::BitVec apply_slice(const bdd::BitVec& bits,
                                               bool has_slice,
                                               hdl::BitRange slice);

  const netlist::Netlist& nl_;
  bdd::BddManager& mgr_;
  util::DiagnosticSink& diags_;

  int first_instr_var_ = 0;
  std::unordered_map<std::string, bdd::BitVec> out_memo_;
  std::unordered_map<std::string, bdd::BitVec> dynamic_memo_;
  std::unordered_set<std::string> in_progress_;
  std::unordered_set<std::string> warned_;
  int opaque_counter_ = 0;
};

}  // namespace record::ise
