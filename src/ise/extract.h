// Instruction-set extraction: netlist model -> RT template base (paper sec. 2).
//
// For every RT destination in the netlist (registers, mode registers,
// memories, primary output ports) all single-cycle data-transfer routes are
// enumerated and paired with BDD execution conditions derived from
// control-signal analysis. Templates whose condition is unsatisfiable
// (instruction-encoding conflicts, bus contention) are discarded.
#pragma once

#include "ise/routes.h"
#include "netlist/netlist.h"
#include "rtl/template.h"
#include "util/diagnostics.h"

namespace record::ise {

struct ExtractOptions {
  RouteLimits limits;
  /// Discard templates with unsatisfiable conditions (paper behaviour).
  /// Disabled only by the pruning-ablation benchmark.
  bool prune_unsat = true;
  /// Also extract templates targeting primary output ports.
  bool include_proc_out = true;
};

struct ExtractStats {
  std::size_t destinations = 0;      // RT destinations visited
  std::size_t raw_routes = 0;        // routes before dedup/pruning
  std::size_t unsat_discarded = 0;   // complete templates dropped (UNSAT)
  std::size_t duplicates = 0;        // identical transfer merged
  RouteStats route_stats;
};

struct ExtractResult {
  rtl::TemplateBase base;
  ExtractStats stats;
};

/// Runs instruction-set extraction on an elaborated netlist.
[[nodiscard]] ExtractResult extract(const netlist::Netlist& nl,
                                    const ExtractOptions& options,
                                    util::DiagnosticSink& diags);

}  // namespace record::ise
