// IR statement -> grammar subject tree translation.
//
// Builds the expression trees that the processor-specific tree parser
// covers. Widths are resolved here against the target's storage widths
// (the same IR program retargets to any model offering the operations):
//   * variables take the width of their bound storage,
//   * loads take the memory's data width,
//   * multiplication widens (w1 + w2, the DSP fixed-point convention),
//   * other operators take the max of their operand widths,
//   * lo()/hi() intrinsics become canonical slice operators (bitsH_L.w).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "grammar/build.h"
#include "grammar/grammar.h"
#include "ir/program.h"
#include "rtl/template.h"
#include "treeparse/subject.h"
#include "util/diagnostics.h"

namespace record::select {

class SubjectMapper {
 public:
  SubjectMapper(const rtl::TemplateBase& base, const grammar::TreeGrammar& g,
                const ir::Program& prog, util::DiagnosticSink& diags)
      : base_(base), g_(g), prog_(prog), diags_(diags) {}

  /// Maps an Assign or Store statement to a subject tree rooted in ASSIGN.
  /// nullopt (with diagnostics) when the program uses storage or operations
  /// the target does not provide.
  ///
  /// With `promote_ops` every non-custom operator is widened to twice its
  /// natural width: the fixed-point convention that data arithmetic runs at
  /// accumulator precision. The selector retries a failed statement in this
  /// mode, so pointer arithmetic (which must stay narrow) still labels
  /// naturally on the first attempt.
  [[nodiscard]] std::optional<treeparse::SubjectTree> map_stmt(
      const ir::Stmt& stmt, bool promote_ops = false);

  /// Resolved width of an expression (0 = width-free constant). Memoised
  /// per expression node — deep operator chains would otherwise re-walk
  /// their subtrees at every level.
  [[nodiscard]] int resolve_width(const ir::Expr& e) const;

 private:
  treeparse::SubjectNode* map_expr(const ir::Expr& e,
                                   treeparse::SubjectTree& tree, bool& ok);
  [[nodiscard]] int resolve_width_uncached(const ir::Expr& e) const;
  [[nodiscard]] int storage_width(const std::string& name) const;

  bool promote_ops_ = false;

  const rtl::TemplateBase& base_;
  const grammar::TreeGrammar& g_;
  const ir::Program& prog_;
  util::DiagnosticSink& diags_;

  // Per-program memos — name construction and terminal/storage resolution
  // are string-heavy, and expression widths recurse over subtrees, so a big
  // statement re-resolves the same few answers per node without these.
  // string_view keys reference program/base-owned names, which outlive the
  // mapper.
  mutable std::unordered_map<const ir::Expr*, int> width_memo_;
  mutable std::unordered_map<std::string_view, int> storage_width_cache_;
  std::unordered_map<const ir::Binding*, grammar::TermId> var_term_cache_;
  std::unordered_map<std::string_view, grammar::TermId> load_term_cache_;
  std::unordered_map<std::uint64_t, grammar::TermId> op_term_cache_;
};

}  // namespace record::select
