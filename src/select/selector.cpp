#include "select/selector.h"

#include <algorithm>
#include <sstream>

#include "obs/trace.h"
#include "select/subject_map.h"
#include "util/strings.h"

namespace record::select {

using util::fmt;

std::string SelectionResult::listing() const {
  std::ostringstream os;
  for (const StmtCode& sc : stmts) {
    if (sc.is_label) {
      os << sc.label << ":\n";
      continue;
    }
    if (!sc.source.empty()) os << "; " << sc.source << '\n';
    for (const SelectedRT& rt : sc.rts) os << "    " << rt.comment << '\n';
  }
  return os.str();
}

std::string_view to_string(Engine e) {
  switch (e) {
    case Engine::kAuto:
      return "auto";
    case Engine::kTables:
      return "tables";
    case Engine::kInterpreter:
      break;
  }
  return "interpreter";
}

CodeSelector::CodeSelector(const rtl::TemplateBase& base,
                           const grammar::TreeGrammar& g,
                           util::DiagnosticSink& diags,
                           const burstab::TargetTables* tables,
                           SelectScratch* scratch)
    : base_(base), g_(g), diags_(diags), parser_(g), scratch_(scratch) {
  if (tables) table_parser_.emplace(g, *tables);
  if (!scratch_) {
    owned_scratch_ = std::make_unique<SelectScratch>();
    scratch_ = owned_scratch_.get();
  }
}

void CodeSelector::label_subject(const treeparse::SubjectTree& subject,
                                 treeparse::LabelResult& out) const {
  if (table_parser_)
    table_parser_->label_into(subject, out);
  else
    parser_.label_into(subject, out);
}

void CodeSelector::set_coverage(obs::CoverageMap* map) {
  coverage_ = map;
  parser_.set_coverage(map);
  if (table_parser_) table_parser_->set_coverage(map);
}

namespace {

/// "nt:<storage>" -> "<storage>"; empty if not a storage non-terminal.
std::string storage_of_nt(const std::string& nt_name) {
  if (nt_name.rfind("nt:", 0) == 0) return nt_name.substr(3);
  return {};
}

/// "load:<mem>.<w>" -> "<mem>"; empty otherwise.
std::string mem_of_load_terminal(const std::string& term_name) {
  if (term_name.rfind("load:", 0) != 0) return {};
  std::string rest = term_name.substr(5);
  std::size_t dot = rest.rfind('.');
  return dot == std::string::npos ? rest : rest.substr(0, dot);
}

/// Collects the pattern's storage reads alongside, for each read, the
/// pattern-preorder ordinal of the NonTerm leaf it came from — the index of
/// the matching child derivation. -1 marks reads that are not NT-backed
/// (memory loads), -2 terminal register matches (live-in by construction).
/// `nt_counter` numbers every NonTerm leaf, storage-backed or not, so the
/// ordinals line up with treeparse's derivation-children preorder.
void collect_reads(const grammar::TreeGrammar& g, const grammar::PatNode& p,
                   std::vector<std::string>& reads,
                   std::vector<int>& ordinals, int& nt_counter) {
  switch (p.kind) {
    case grammar::PatNode::Kind::NonTerm: {
      int ord = nt_counter++;
      std::string s = storage_of_nt(g.nonterminal_name(p.nt));
      if (!s.empty()) {
        reads.push_back(s);
        ordinals.push_back(ord);
      }
      return;
    }
    case grammar::PatNode::Kind::Term: {
      std::string mem = mem_of_load_terminal(g.terminal_name(p.term));
      if (!mem.empty()) {
        reads.push_back(mem);
        ordinals.push_back(-1);
      }
      std::string reg = g.terminal_name(p.term);
      if (reg.rfind("$reg:", 0) == 0) {
        reads.push_back(reg.substr(5));
        ordinals.push_back(-2);
      }
      for (const grammar::PatNodePtr& c : p.children)
        collect_reads(g, *c, reads, ordinals, nt_counter);
      return;
    }
    case grammar::PatNode::Kind::Imm:
    case grammar::PatNode::Kind::Const:
      return;
  }
}

}  // namespace

const std::vector<std::string>& CodeSelector::reads_of_rule(int rule_id) {
  if (reads_cache_.size() <= static_cast<std::size_t>(rule_id)) {
    reads_cache_.resize(g_.rules().size());
    read_ordinals_cache_.resize(g_.rules().size());
  }
  std::unique_ptr<std::vector<std::string>>& slot =
      reads_cache_[static_cast<std::size_t>(rule_id)];
  if (!slot) {
    slot = std::make_unique<std::vector<std::string>>();
    auto ords = std::make_unique<std::vector<int>>();
    int nt_counter = 0;
    collect_reads(g_, *g_.rule(rule_id).pattern, *slot, *ords, nt_counter);
    read_ordinals_cache_[static_cast<std::size_t>(rule_id)] = std::move(ords);
  }
  return *slot;
}

const std::vector<int>& CodeSelector::read_ordinals_of_rule(int rule_id) {
  (void)reads_of_rule(rule_id);  // fills both caches
  return *read_ordinals_cache_[static_cast<std::size_t>(rule_id)];
}

int CodeSelector::imm_var(int pos) {
  if (imm_var_cache_.size() <= static_cast<std::size_t>(pos))
    imm_var_cache_.resize(static_cast<std::size_t>(pos) + 1, -2);
  int& slot = imm_var_cache_[static_cast<std::size_t>(pos)];
  if (slot == -2) slot = base_.mgr->find_var(fmt("I[{}]", pos));
  return slot;
}

bdd::Ref CodeSelector::imm_constraint(
    const std::vector<treeparse::ImmBinding>& imms, bdd::Ref cond) {
  bdd::BddManager& mgr = *base_.mgr;
  for (const treeparse::ImmBinding& b : imms) {
    const std::vector<int>& bits = *b.field_bits;
    for (std::size_t j = 0; j < bits.size(); ++j) {
      int var = imm_var(bits[j]);
      if (var < 0) continue;
      bool bit = ((static_cast<std::uint64_t>(b.value) >> j) & 1u) != 0;
      cond = mgr.land(cond, mgr.literal(var, bit));
    }
  }
  return cond;
}

SelectedRT CodeSelector::instantiate(const treeparse::Derivation& d) {
  const grammar::Rule& r = g_.rule(d.rule);
  SelectedRT out;
  out.rule_id = d.rule;
  out.tmpl = &base_.templates.at(static_cast<std::size_t>(r.template_id));
  out.dest = out.tmpl->dest;
  out.imms.assign(d.imms.begin(), d.imms.end());
  out.reads = reads_of_rule(d.rule);
  if (out.tmpl->addr) {
    // Memory-destination templates also read what their address tree reads.
    // (The address pattern is part of the rule's RHS store node, so
    // collect_reads above already visited it.)
  }
  if (out.imms.size() == 1) {
    auto [it, inserted] = imm_cond_cache_.try_emplace(
        TmplValue{out.tmpl->id, out.imms[0].value}, bdd::kFalse);
    if (inserted) it->second = imm_constraint(out.imms, out.tmpl->cond);
    out.cond = it->second;
  } else {
    out.cond = imm_constraint(out.imms, out.tmpl->cond);
  }
  // Renders exactly what the ostream formatting used to produce, without
  // the per-RT stringstream.
  if (signature_cache_.size() <= static_cast<std::size_t>(out.tmpl->id))
    signature_cache_.resize(base_.templates.size());
  std::string& sig = signature_cache_[static_cast<std::size_t>(out.tmpl->id)];
  if (sig.empty()) sig = out.tmpl->signature();
  std::string& cmt = out.comment;
  cmt = sig;
  if (!d.imms.empty()) {
    cmt += "  {";
    for (std::size_t i = 0; i < d.imms.size(); ++i) {
      if (i) cmt += ", ";
      cmt += "imm";
      cmt += std::to_string(d.imms[i].field_bits->size());
      cmt += '=';
      cmt += std::to_string(d.imms[i].value);
    }
    cmt += '}';
  }
  return out;
}

void CodeSelector::flatten(const treeparse::Derivation& d,
                           std::vector<SelectedRT>& out) {
  const grammar::Rule& rule = g_.rule(d.rule);
  // Chosen-rule coverage: every application in the optimal derivation,
  // including chain/start/stop rules that emit no RT.
  if (coverage_) coverage_->record_rule_chosen(d.rule);

  // Capture the pattern-preorder child layout BEFORE the Sethi-Ullman sort
  // below permutes it: reads_producer entries resolve NT ordinals against
  // this layout.
  const std::vector<int>* ords = nullptr;
  std::vector<treeparse::Derivation*> ord_children;
  if (rule.kind == grammar::RuleKind::RT) {
    ords = &read_ordinals_of_rule(d.rule);
    ord_children.assign(d.children.begin(), d.children.end());
  }

  // Children (operand subtrees / chain sources) evaluate first. Their
  // relative order is free; evaluating the subtree with more RT applications
  // first (Sethi-Ullman flavour, following the paper's reference to
  // Araujo/Malik scheduling) minimises clobbering of special-purpose
  // registers and hence spills. Stable insertion sort over the arena child
  // array: allocation-free, same order as a stable sort by descending
  // application count.
  const treeparse::ArenaSpan<treeparse::Derivation*>& ch = d.children;
  for (std::uint32_t i = 1; i < ch.count; ++i) {
    treeparse::Derivation* x = ch[i];
    std::uint32_t j = i;
    while (j > 0 && ch[j - 1]->apps < x->apps) {
      ch[j] = ch[j - 1];
      --j;
    }
    ch[j] = x;
  }
  // Flatten the children, remembering where each subtree's code ends: the
  // last RT of an operand subtree is the producer of the value its NT read
  // consumes.
  std::vector<std::pair<const treeparse::Derivation*, int>> last_rt;
  last_rt.reserve(ch.count);
  for (treeparse::Derivation* c : ch) {
    std::size_t before = out.size();
    flatten(*c, out);
    if (out.size() > before)
      last_rt.emplace_back(c, static_cast<int>(out.size()) - 1);
  }
  if (rule.kind != grammar::RuleKind::RT) return;  // start/stop apply no RT
  SelectedRT rt = instantiate(d);
  rt.reads_producer.assign(ords->size(), kReadCurrent);
  for (std::size_t i = 0; i < ords->size(); ++i) {
    int ord = (*ords)[i];
    if (ord == -2) {
      rt.reads_producer[i] = kReadEntry;  // terminal register match
    } else if (ord >= 0 && ord < static_cast<int>(ord_children.size())) {
      const treeparse::Derivation* c =
          ord_children[static_cast<std::size_t>(ord)];
      int idx = kReadEntry;  // a code-free subtree leaves the value in place
      for (const auto& [ptr, last] : last_rt)
        if (ptr == c) idx = last;
      rt.reads_producer[i] = idx;
    }
  }
  if (rt.cond == bdd::kFalse)
    diags_.warning({}, fmt("immediate encoding conflicts with the condition "
                           "of template {} ('{}')",
                           rt.tmpl->id, rt.tmpl->signature()));
  out.push_back(std::move(rt));
}

void CodeSelector::explain_derivation(const treeparse::Derivation& d,
                                      const treeparse::LabelResult& labels,
                                      StmtExplain& out) const {
  const grammar::Rule& r = g_.rule(d.rule);
  const treeparse::SubjectNode* n = d.node;
  ExplainStep step;
  step.rule = d.rule;
  step.rule_text = grammar::rule_to_string(g_, r);
  step.nonterminal = g_.nonterminal_name(r.lhs);
  step.node =
      n->is_const ? fmt("#{}", n->value) : g_.terminal_name(n->term);
  step.cost = labels
                  .at(static_cast<std::size_t>(n->id),
                      static_cast<std::size_t>(r.lhs))
                  .cost;
  step.is_chain = r.is_chain();
  for (const treeparse::ImmBinding& b : d.imms) {
    ExplainImm imm;
    imm.width = static_cast<int>(b.field_bits->size());
    imm.value = b.value;
    imm.fits = treeparse::TreeParser::immediate_fits(b.value, imm.width);
    step.imms.push_back(imm);
  }
  // The rejected alternatives at this node: the winning rules of the OTHER
  // non-terminals (the dynamic program already reduced each non-terminal to
  // its argmin, so these are the surviving competitors with their closed
  // costs).
  const treeparse::LabelEntry* row =
      labels.row(static_cast<std::size_t>(n->id));
  for (int nt = 0; nt < labels.nt_count; ++nt) {
    if (nt == r.lhs) continue;
    const treeparse::LabelEntry& e = row[static_cast<std::size_t>(nt)];
    if (e.rule < 0 || e.cost >= grammar::kInfCost) continue;
    ExplainAlternative alt;
    alt.rule = e.rule;
    alt.rule_text = grammar::rule_to_string(g_, g_.rule(e.rule));
    alt.nonterminal = g_.nonterminal_name(nt);
    alt.cost = e.cost;
    step.alternatives.push_back(std::move(alt));
  }
  out.steps.push_back(std::move(step));
  for (treeparse::Derivation* c : d.children)
    explain_derivation(*c, labels, out);
}

std::optional<SelectedRT> CodeSelector::make_branch(const ir::Stmt& stmt,
                                                    const ir::Program& prog) {
  bdd::BddManager& mgr = *base_.mgr;
  const rtl::RTTemplate* unconditional = nullptr;
  const rtl::RTTemplate* conditional = nullptr;
  for (const rtl::RTTemplate& t : base_.templates) {
    if (t.dest != kProgramCounter ||
        t.dest_kind != rtl::DestKind::Register)
      continue;
    if (t.value->kind != rtl::RTNode::Kind::Imm) continue;
    bool dynamic = false;
    for (int v : mgr.support(t.cond)) {
      const std::string& n = mgr.var_name(v);
      if (n.rfind("I[", 0) != 0 && n.rfind("M:", 0) != 0) dynamic = true;
    }
    if (dynamic) {
      if (!conditional) conditional = &t;
    } else {
      if (!unconditional) unconditional = &t;
    }
  }

  const rtl::RTTemplate* chosen = nullptr;
  if (stmt.branch == ir::BranchKind::Always)
    chosen = unconditional ? unconditional : conditional;
  else
    chosen = conditional ? conditional : unconditional;
  if (!chosen) {
    diags_.error({}, fmt("target has no program-control template (register "
                         "'{}' with an immediate route) for '{}'",
                         kProgramCounter, stmt.str()));
    return std::nullopt;
  }

  SelectedRT out;
  out.tmpl = chosen;
  out.dest = kProgramCounter;
  out.cond = chosen->cond;
  out.is_branch = true;
  out.branch_target = stmt.label;
  if (stmt.branch != ir::BranchKind::Always) {
    const ir::Binding* b = prog.binding_of(stmt.cond_var);
    if (b && b->kind == ir::Binding::Kind::Register)
      out.reads.push_back(b->storage);
  }
  std::ostringstream cmt;
  cmt << chosen->signature() << "  -> " << stmt.label;
  if (stmt.branch == ir::BranchKind::IfZero) cmt << " [if zero]";
  if (stmt.branch == ir::BranchKind::IfNotZero) cmt << " [if not zero]";
  out.comment = cmt.str();
  return out;
}

std::optional<SelectionResult> CodeSelector::select(const ir::Program& prog) {
  if (!prog.validate(diags_)) return std::nullopt;
  SubjectMapper mapper(base_, g_, prog, diags_);
  SelectionResult result;

  for (const ir::Stmt& stmt : prog.stmts()) {
    StmtCode sc;
    sc.source = stmt.str();
    switch (stmt.kind) {
      case ir::Stmt::Kind::LabelDef:
        sc.is_label = true;
        sc.label = stmt.label;
        break;
      case ir::Stmt::Kind::Branch: {
        std::optional<SelectedRT> rt = make_branch(stmt, prog);
        if (!rt) return std::nullopt;
        sc.rts.push_back(std::move(*rt));
        sc.parse_cost = 1;
        if (explain_) {
          StmtExplain ex;
          ex.source = sc.source;
          ex.cost = sc.parse_cost;
          explain_->stmts.push_back(std::move(ex));
        }
        break;
      }
      case ir::Stmt::Kind::Assign:
      case ir::Stmt::Kind::Store: {
        // Disabled-tracer cost here is one relaxed load + branch per
        // statement (not per node), below the selection bench's noise.
        obs::Span label_span("select.label");
        std::optional<treeparse::SubjectTree> subject =
            mapper.map_stmt(stmt);
        if (!subject) return std::nullopt;
        treeparse::LabelResult* labels = &scratch_->labels;
        label_subject(*subject, *labels);
        if (!labels->ok) {
          // Retry at promoted (accumulator) precision — see
          // SubjectMapper::map_stmt.
          util::DiagnosticSink retry_diags;
          SubjectMapper retry_mapper(base_, g_, prog, retry_diags);
          std::optional<treeparse::SubjectTree> promoted =
              retry_mapper.map_stmt(stmt, /*promote_ops=*/true);
          if (promoted) {
            label_subject(*promoted, scratch_->promoted_labels);
            if (scratch_->promoted_labels.ok) {
              subject = std::move(promoted);
              labels = &scratch_->promoted_labels;
              if (coverage_)
                coverage_->record_variant(obs::CoverageVariant::kPromotedRetry);
            }
          }
        }
        stats_.nodes_labelled += subject->size();
        label_span.note("nodes", static_cast<std::int64_t>(subject->size()));
        label_span.end();
        if (!labels->ok) {
          diags_.error({}, fmt("no cover for statement '{}' (subject {})",
                               stmt.str(), subject->to_string(g_)));
          return std::nullopt;
        }
        OBS_SPAN("select.flatten");
        scratch_->arena.reset();
        treeparse::Derivation* d =
            parser_.reduce(*subject, *labels, scratch_->arena);
        sc.parse_cost = labels->root_cost;
        flatten(*d, sc.rts);
        if (explain_) {
          StmtExplain ex;
          ex.source = sc.source;
          ex.subject = subject->to_string(g_);
          ex.cost = labels->root_cost;
          ex.promoted = (labels == &scratch_->promoted_labels);
          explain_derivation(*d, *labels, ex);
          explain_->stmts.push_back(std::move(ex));
        }
        break;
      }
    }
    ++stats_.statements;
    result.total_rts += sc.rts.size();
    result.stmts.push_back(std::move(sc));
  }
  return result;
}

}  // namespace record::select
