#include "select/subject_map.h"

#include "util/strings.h"

namespace record::select {

using ir::Expr;
using util::fmt;

int SubjectMapper::storage_width(const std::string& name) const {
  auto [it, inserted] = storage_width_cache_.try_emplace(name, 0);
  if (inserted) {
    const rtl::StorageInfo* s = base_.find_storage(name);
    it->second = s ? s->width : 0;
  }
  return it->second;
}

int SubjectMapper::resolve_width(const Expr& e) const {
  if (e.width_override > 0) return e.width_override;
  auto memo = width_memo_.find(&e);
  if (memo != width_memo_.end()) return memo->second;
  int w = resolve_width_uncached(e);
  width_memo_.emplace(&e, w);
  return w;
}

int SubjectMapper::resolve_width_uncached(const Expr& e) const {
  switch (e.kind) {
    case Expr::Kind::Const:
      return 0;  // width-free; matching is value-based
    case Expr::Kind::Var: {
      const ir::Binding* b = prog_.binding_of(e.var);
      if (!b) return 0;
      return storage_width(b->storage);
    }
    case Expr::Kind::Load:
      return storage_width(e.mem);
    case Expr::Kind::OpNode: {
      if (e.op == hdl::OpKind::Custom) {
        if ((e.custom == "lo" || e.custom == "hi") && e.args.size() == 1) {
          int w = resolve_width(*e.args[0]);
          return w / 2;
        }
        int w = 0;
        for (const ir::ExprPtr& a : e.args)
          w = std::max(w, resolve_width(*a));
        return w;
      }
      if (e.op == hdl::OpKind::Mul && e.args.size() == 2) {
        int w0 = resolve_width(*e.args[0]);
        int w1 = resolve_width(*e.args[1]);
        if (w0 == 0) w0 = w1;
        if (w1 == 0) w1 = w0;
        return w0 + w1;
      }
      if ((e.op == hdl::OpKind::Neg || e.op == hdl::OpKind::Not) &&
          e.args.size() == 1)
        return resolve_width(*e.args[0]);
      if ((e.op == hdl::OpKind::Shl || e.op == hdl::OpKind::Shr) &&
          !e.args.empty())
        return resolve_width(*e.args[0]);
      int w = 0;
      for (const ir::ExprPtr& a : e.args) w = std::max(w, resolve_width(*a));
      return w;
    }
  }
  return 0;
}

treeparse::SubjectNode* SubjectMapper::map_expr(const Expr& e,
                                                treeparse::SubjectTree& tree,
                                                bool& ok) {
  switch (e.kind) {
    case Expr::Kind::Const:
      return tree.make_const(g_.const_terminal(), e.value);

    case Expr::Kind::Var: {
      const ir::Binding* b = prog_.binding_of(e.var);
      if (!b) {
        diags_.error({}, fmt("variable '{}' has no binding", e.var));
        ok = false;
        return tree.make_const(g_.const_terminal(), 0);
      }
      if (b->kind == ir::Binding::Kind::Register) {
        auto [cached, inserted] = var_term_cache_.try_emplace(b, -1);
        if (inserted)
          cached->second =
              g_.find_terminal(grammar::reg_terminal_name(b->storage));
        grammar::TermId t = cached->second;
        if (t < 0) {
          diags_.error({}, fmt("target has no readable register '{}' (for "
                               "variable '{}')",
                               b->storage, e.var));
          ok = false;
          return tree.make_const(g_.const_terminal(), 0);
        }
        return tree.make(t);
      }
      // Memory-cell variable: a load at a constant address.
      auto [cached, inserted] = load_term_cache_.try_emplace(b->storage, -1);
      if (inserted)
        cached->second = g_.find_terminal(grammar::load_terminal_name(
            b->storage, storage_width(b->storage)));
      grammar::TermId t = cached->second;
      if (t < 0) {
        diags_.error({}, fmt("target cannot load from memory '{}' (variable "
                             "'{}')",
                             b->storage, e.var));
        ok = false;
        return tree.make_const(g_.const_terminal(), 0);
      }
      treeparse::SubjectNode* addr =
          tree.make_const(g_.const_terminal(), b->cell);
      return tree.make(t, {addr});
    }

    case Expr::Kind::Load: {
      auto [cached, inserted] = load_term_cache_.try_emplace(e.mem, -1);
      if (inserted)
        cached->second = g_.find_terminal(
            grammar::load_terminal_name(e.mem, storage_width(e.mem)));
      grammar::TermId t = cached->second;
      if (t < 0) {
        diags_.error({}, fmt("target cannot load from memory '{}'", e.mem));
        ok = false;
        return tree.make_const(g_.const_terminal(), 0);
      }
      treeparse::SubjectNode* addr = map_expr(*e.args[0], tree, ok);
      return tree.make(t, {addr});
    }

    case Expr::Kind::OpNode: {
      rtl::OpSig sig;
      std::uint64_t op_key = 0;
      bool cacheable = false;
      if (e.op == hdl::OpKind::Custom &&
          (e.custom == "lo" || e.custom == "hi") && e.args.size() == 1) {
        int w = resolve_width(*e.args[0]);
        sig = e.custom == "lo" ? rtl::slice_op_sig(w / 2 - 1, 0)
                               : rtl::slice_op_sig(w - 1, w / 2);
      } else {
        sig.kind = e.op;
        sig.custom = e.custom;
        sig.width = resolve_width(e);
        if (promote_ops_ && e.op != hdl::OpKind::Custom) sig.width *= 2;
        if (e.op != hdl::OpKind::Custom) {
          // (kind, resolved width, promotion) fully determine the terminal
          // for non-custom operators, including the promotion fallback.
          cacheable = true;
          op_key = (static_cast<std::uint64_t>(e.op) << 34) ^
                   (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                        sig.width))
                    << 1) ^
                   (promote_ops_ ? 1u : 0u);
          auto cached = op_term_cache_.find(op_key);
          if (cached != op_term_cache_.end() && cached->second >= 0) {
            std::vector<treeparse::SubjectNode*> kids;
            kids.reserve(e.args.size());
            for (const ir::ExprPtr& a : e.args)
              kids.push_back(map_expr(*a, tree, ok));
            return tree.make(cached->second, std::move(kids));
          }
        }
      }
      grammar::TermId t = g_.find_terminal(sig.name());
      if (t < 0 && sig.kind != hdl::OpKind::Custom && sig.width > 0) {
        // Fixed-point promotion: a DSP datapath computes at accumulator
        // precision, so a 16-bit source addition maps onto the 32-bit
        // adder when no narrow unit exists.
        rtl::OpSig promoted = sig;
        promoted.width = sig.width * 2;
        t = g_.find_terminal(promoted.name());
        if (t < 0) {
          promoted.width = sig.width * 4;
          t = g_.find_terminal(promoted.name());
        }
      }
      if (cacheable && t >= 0) op_term_cache_[op_key] = t;
      if (t < 0) {
        diags_.error({}, fmt("operation '{}' not available on this target",
                             sig.name()));
        ok = false;
        return tree.make_const(g_.const_terminal(), 0);
      }
      std::vector<treeparse::SubjectNode*> kids;
      kids.reserve(e.args.size());
      for (const ir::ExprPtr& a : e.args)
        kids.push_back(map_expr(*a, tree, ok));
      return tree.make(t, std::move(kids));
    }
  }
  ok = false;
  return tree.make_const(g_.const_terminal(), 0);
}

std::optional<treeparse::SubjectTree> SubjectMapper::map_stmt(
    const ir::Stmt& stmt, bool promote_ops) {
  promote_ops_ = promote_ops;
  treeparse::SubjectTree tree;
  bool ok = true;

  if (stmt.kind == ir::Stmt::Kind::Assign) {
    const ir::Binding* b = prog_.binding_of(stmt.dest_var);
    if (!b) {
      diags_.error({}, fmt("destination '{}' has no binding", stmt.dest_var));
      return std::nullopt;
    }
    if (b->kind == ir::Binding::Kind::Register) {
      grammar::TermId dest_t =
          g_.find_terminal(grammar::dest_terminal_name(b->storage));
      if (dest_t < 0) {
        diags_.error({}, fmt("target has no writable storage '{}'",
                             b->storage));
        return std::nullopt;
      }
      treeparse::SubjectNode* dest_leaf = tree.make(dest_t);
      treeparse::SubjectNode* rhs = map_expr(*stmt.rhs, tree, ok);
      if (!ok) return std::nullopt;
      tree.set_root(tree.make(g_.assign_terminal(), {dest_leaf, rhs}));
      return tree;
    }
    // Register-bound var in memory: lower to a store at the bound cell.
    grammar::TermId dest_t =
        g_.find_terminal(grammar::dest_terminal_name(b->storage));
    grammar::TermId store_t =
        g_.find_terminal(grammar::store_terminal_name(b->storage));
    if (dest_t < 0 || store_t < 0) {
      diags_.error({}, fmt("target cannot store to memory '{}'", b->storage));
      return std::nullopt;
    }
    treeparse::SubjectNode* dest_leaf = tree.make(dest_t);
    treeparse::SubjectNode* addr =
        tree.make_const(g_.const_terminal(), b->cell);
    treeparse::SubjectNode* rhs = map_expr(*stmt.rhs, tree, ok);
    if (!ok) return std::nullopt;
    treeparse::SubjectNode* store = tree.make(store_t, {addr, rhs});
    tree.set_root(tree.make(g_.assign_terminal(), {dest_leaf, store}));
    return tree;
  }

  if (stmt.kind == ir::Stmt::Kind::Store) {
    grammar::TermId dest_t =
        g_.find_terminal(grammar::dest_terminal_name(stmt.mem));
    grammar::TermId store_t =
        g_.find_terminal(grammar::store_terminal_name(stmt.mem));
    if (dest_t < 0 || store_t < 0) {
      diags_.error({}, fmt("target cannot store to memory '{}'", stmt.mem));
      return std::nullopt;
    }
    treeparse::SubjectNode* dest_leaf = tree.make(dest_t);
    treeparse::SubjectNode* addr = map_expr(*stmt.addr, tree, ok);
    treeparse::SubjectNode* rhs = map_expr(*stmt.rhs, tree, ok);
    if (!ok) return std::nullopt;
    treeparse::SubjectNode* store = tree.make(store_t, {addr, rhs});
    tree.set_root(tree.make(g_.assign_terminal(), {dest_leaf, store}));
    return tree;
  }

  diags_.error({}, "only Assign/Store statements map to subject trees");
  return std::nullopt;
}

}  // namespace record::select
