// Code selection: optimal covering of IR statements by RT templates
// (paper section 3.2).
//
// Each Assign/Store statement's subject tree is parsed with the
// processor-specific BURS parser; the optimal derivation is flattened into a
// sequence of selected RT instances. Non-terminal choices in the derivation
// *are* the special-purpose-register allocation for intermediate results;
// chain rules materialise as data-transfer RTs whose cost was part of the
// optimum. Branch statements map to the target's program-control templates
// (destination "PC").
//
// Steady-state selection is allocation-light: label results and derivations
// live in a SelectScratch (flat label array + bump arena) that the selector
// reuses across statements and that callers — notably CompileService
// workers — can reuse across whole jobs; per-rule read lists, template
// signatures and immediate-field BDD variables are memoised per target.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.h"
#include "burstab/tableparse.h"
#include "grammar/grammar.h"
#include "ir/program.h"
#include "rtl/template.h"
#include "treeparse/arena.h"
#include "treeparse/burs.h"
#include "util/diagnostics.h"

namespace record::select {

/// Labelling engine: the dynamic-programming interpreter (TreeParser) or the
/// table-driven burstab engine. Both produce identical optimal derivations;
/// the table engine trades a per-target table-compilation step for O(1)
/// per-node lookups at selection time. kAuto selects tables whenever the
/// target carries them.
enum class Engine : std::uint8_t { kAuto, kInterpreter, kTables };

[[nodiscard]] std::string_view to_string(Engine e);

/// Reusable selection scratch: the derivation arena plus the flat labelling
/// buffers. A CodeSelector owns one internally unless the caller passes a
/// longer-lived instance (service workers keep one per thread and reuse it
/// across jobs, so a steady-state compile performs O(1) allocations).
struct SelectScratch {
  treeparse::DerivationArena arena;
  treeparse::LabelResult labels;
  treeparse::LabelResult promoted_labels;
};

/// One selected machine operation.
/// SelectedRT::reads_producer sentinels.
inline constexpr int kReadEntry = -1;    // statement-entry (live-in) value
inline constexpr int kReadCurrent = -2;  // positional: most recent write

struct SelectedRT {
  const rtl::RTTemplate* tmpl = nullptr;  // null only for pseudo operations
  int rule_id = -1;
  /// Execution condition: template condition AND immediate-field encodings.
  bdd::Ref cond = bdd::kTrue;
  std::string dest;                 // storage written
  std::vector<std::string> reads;   // storages read (registers and memories)
  /// Parallel to `reads`: which value each read consumes, known exactly
  /// from the derivation at selection time —
  ///   * kReadEntry (-1): the statement-ENTRY value (the pattern leaf
  ///     matched a program-variable subject leaf in place),
  ///   * kReadCurrent (-2): whatever the storage holds at execution time
  ///     (memory operands; spill code),
  ///   * >= 0: the statement-relative index of the RT that produces the
  ///     consumed intermediate (the last RT of the operand's subtree).
  /// Dataflow analysis (sched/order.h) uses this to spot operands destroyed
  /// by routing scratch before their consumer runs. Empty = all kReadCurrent.
  std::vector<int> reads_producer;
  std::vector<treeparse::ImmBinding> imms;
  std::string comment;              // human-readable rendering
  bool is_branch = false;
  std::string branch_target;        // label (branches only)

  [[nodiscard]] bool is_pseudo() const { return tmpl == nullptr; }
};

/// Code selected for one IR statement.
struct StmtCode {
  std::string source;            // rendered IR statement (owned copy)
  std::vector<SelectedRT> rts;   // bottom-up evaluation order
  bool is_label = false;
  std::string label;
  int parse_cost = 0;            // optimal derivation cost
};

struct SelectionResult {
  std::vector<StmtCode> stmts;
  std::size_t total_rts = 0;

  [[nodiscard]] std::string listing() const;
};

struct SelectorStats {
  std::size_t nodes_labelled = 0;
  std::size_t statements = 0;
};

/// A rule the optimal derivation did NOT use at some node: the winning rule
/// of a different non-terminal there, with its closed cost. These are the
/// choices the dynamic program weighed and rejected.
struct ExplainAlternative {
  int rule = -1;
  std::string rule_text;      // grammar::rule_to_string rendering
  std::string nonterminal;    // what it would have derived
  int cost = grammar::kInfCost;
};

/// One immediate-field binding decision of a chosen rule.
struct ExplainImm {
  int width = 0;              // instruction-word field width in bits
  std::int64_t value = 0;
  bool fits = false;          // TreeParser::immediate_fits(value, width)
};

/// One rule application of the chosen derivation, in preorder.
struct ExplainStep {
  int rule = -1;
  std::string rule_text;
  std::string nonterminal;    // derived non-terminal (the rule's LHS)
  std::string node;           // subject node ("+.16", "#5", "$reg:AX", ...)
  int cost = grammar::kInfCost;  // closed cost of LHS at the node
  bool is_chain = false;
  std::vector<ExplainImm> imms;
  std::vector<ExplainAlternative> alternatives;
};

/// Why selection chose what it chose for one IR statement.
struct StmtExplain {
  std::string source;         // rendered IR statement
  std::string subject;        // rendered subject tree (empty for branches)
  int cost = 0;               // optimal derivation cost
  bool promoted = false;      // labelled at promoted (accumulator) precision
  std::vector<ExplainStep> steps;
};

/// Collects per-statement explanations when attached to a CodeSelector (via
/// core::CompileOptions::explain). Plain value sink: selection appends, the
/// caller reads afterwards.
struct ExplainSink {
  std::vector<StmtExplain> stmts;
};

class CodeSelector {
 public:
  /// With `tables` non-null the selector labels subjects through the
  /// table-driven engine; the tables must have been compiled from `g` and
  /// must outlive the selector. With `scratch` non-null the caller's
  /// buffers are (re)used; they must outlive the selector.
  CodeSelector(const rtl::TemplateBase& base, const grammar::TreeGrammar& g,
               util::DiagnosticSink& diags,
               const burstab::TargetTables* tables = nullptr,
               SelectScratch* scratch = nullptr);

  [[nodiscard]] Engine engine() const {
    return table_parser_ ? Engine::kTables : Engine::kInterpreter;
  }

  /// Selects code for a whole program; nullopt if any statement cannot be
  /// covered (diagnostics explain which operation is missing).
  [[nodiscard]] std::optional<SelectionResult> select(
      const ir::Program& prog);

  [[nodiscard]] const SelectorStats& stats() const { return stats_; }

  /// Attach a coverage map (null detaches). Forwards to the labelling
  /// engines (matched rules, states, transition slots) and additionally
  /// records the rules CHOSEN by flatten() plus promoted-precision retries.
  void set_coverage(obs::CoverageMap* map);

  /// Attach an explain sink (null detaches): select() then appends one
  /// StmtExplain per statement describing the chosen derivation, the costs
  /// of rejected alternatives and every immediate-fit decision.
  void set_explain(ExplainSink* sink) { explain_ = sink; }

  /// Name of the storage acting as program counter for branch templates.
  static constexpr const char* kProgramCounter = "PC";

 private:
  void explain_derivation(const treeparse::Derivation& d,
                          const treeparse::LabelResult& labels,
                          StmtExplain& out) const;
  void flatten(const treeparse::Derivation& d, std::vector<SelectedRT>& out);
  [[nodiscard]] SelectedRT instantiate(const treeparse::Derivation& d);
  [[nodiscard]] std::optional<SelectedRT> make_branch(
      const ir::Stmt& stmt, const ir::Program& prog);
  [[nodiscard]] bdd::Ref imm_constraint(
      const std::vector<treeparse::ImmBinding>& imms, bdd::Ref cond);

  /// Labels through the configured engine, into `out`.
  void label_subject(const treeparse::SubjectTree& subject,
                     treeparse::LabelResult& out) const;

  /// Storage names read by the rule's pattern (memoised per rule id).
  [[nodiscard]] const std::vector<std::string>& reads_of_rule(int rule_id);
  /// Parallel to reads_of_rule: for each read, the pattern-preorder ordinal
  /// of the NonTerm leaf it came from (-1 = not NT-backed, -2 = a terminal
  /// register match, live-in by construction). Memoised per rule id.
  [[nodiscard]] const std::vector<int>& read_ordinals_of_rule(int rule_id);
  /// BDD variable of instruction-word bit I[pos] (memoised; -1 = absent).
  [[nodiscard]] int imm_var(int pos);

  const rtl::TemplateBase& base_;
  const grammar::TreeGrammar& g_;
  util::DiagnosticSink& diags_;
  treeparse::TreeParser parser_;
  std::optional<burstab::TableParser> table_parser_;
  SelectorStats stats_;
  obs::CoverageMap* coverage_ = nullptr;
  ExplainSink* explain_ = nullptr;

  std::unique_ptr<SelectScratch> owned_scratch_;  // when none was passed
  SelectScratch* scratch_;

  // Per-target memos (lazily filled; all keyed by stable ids).
  std::vector<std::unique_ptr<std::vector<std::string>>> reads_cache_;
  std::vector<std::unique_ptr<std::vector<int>>> read_ordinals_cache_;
  std::vector<std::string> signature_cache_;  // [template id]
  std::vector<int> imm_var_cache_;            // [bit pos]; -2 = unresolved
  /// Memoised template-cond AND single-immediate encoding: the common
  /// one-field RT shape repeats the same few (template, value) pairs, and
  /// each BDD conjunction walks the manager under its lock.
  struct TmplValue {
    int tmpl;
    std::int64_t value;
    friend bool operator==(const TmplValue&, const TmplValue&) = default;
  };
  struct TmplValueHash {
    std::size_t operator()(const TmplValue& k) const {
      return (static_cast<std::size_t>(k.tmpl) * 1099511628211ull) ^
             std::hash<std::int64_t>{}(k.value);
    }
  };
  std::unordered_map<TmplValue, bdd::Ref, TmplValueHash> imm_cond_cache_;
};

}  // namespace record::select
