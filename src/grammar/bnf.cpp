#include "grammar/bnf.h"

#include <sstream>

namespace record::grammar {

std::string to_bnf(const TreeGrammar& g) {
  std::ostringstream os;
  os << "%start " << g.nonterminal_name(kStart) << '\n';
  os << "%term";
  for (TermId t = 0; t < g.terminal_count(); ++t)
    os << ' ' << g.terminal_name(t) << '=' << t + 1;
  os << "\n%%\n";
  for (const Rule& r : g.rules()) {
    os << g.nonterminal_name(r.lhs) << ": "
       << pattern_to_string(g, *r.pattern) << " = " << r.cost << " ;";
    switch (r.kind) {
      case RuleKind::Start:
        os << " /* start */";
        break;
      case RuleKind::Stop:
        os << " /* stop */";
        break;
      case RuleKind::RT:
        os << " /* RT #" << r.template_id << " */";
        break;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace record::grammar
