#include "grammar/build.h"

#include "util/strings.h"

namespace record::grammar {

using util::fmt;

std::string dest_terminal_name(std::string_view storage) {
  return fmt("$dest:{}", storage);
}
std::string reg_terminal_name(std::string_view storage) {
  return fmt("$reg:{}", storage);
}
std::string port_terminal_name(std::string_view port) {
  return fmt("$port:{}", port);
}
std::string load_terminal_name(std::string_view mem, int width) {
  return fmt("load:{}.{}", mem, width);
}
std::string store_terminal_name(std::string_view mem) {
  return fmt("store:{}", mem);
}
std::string nonterminal_name_for(std::string_view storage) {
  return fmt("nt:{}", storage);
}

namespace {

class Builder {
 public:
  Builder(const rtl::TemplateBase& base, const BuildOptions& options,
          util::DiagnosticSink& diags)
      : base_(base), options_(options), diags_(diags) {}

  BuiltGrammar run() {
    BuiltGrammar out;
    TreeGrammar& g = out.grammar;

    // Non-terminals and the designated per-storage terminals.
    for (const rtl::StorageInfo& s : base_.storage) {
      NtId nt = g.intern_nonterminal(nonterminal_name_for(s.name));
      (void)g.intern_terminal(dest_terminal_name(s.name));
      // Start rule: START -> ASSIGN(Term(dest), NonTerm(dest)).
      std::vector<PatNodePtr> kids;
      kids.push_back(
          pat_term(g.find_terminal(dest_terminal_name(s.name)), {}));
      kids.push_back(pat_nonterm(nt));
      g.add_rule(kStart, pat_term(g.assign_terminal(), std::move(kids)),
                 /*cost=*/0, RuleKind::Start);
      ++out.stats.start_rules;
    }

    // Stop rules for readable non-memory storage:
    // NonTerm(REG) -> Term(REG).
    for (const rtl::StorageInfo& s : base_.storage) {
      if (!s.readable || s.kind == rtl::DestKind::Memory) continue;
      TermId t = g.intern_terminal(reg_terminal_name(s.name));
      g.add_rule(g.find_nonterminal(nonterminal_name_for(s.name)),
                 pat_term(t, {}), /*cost=*/0, RuleKind::Stop);
      ++out.stats.stop_rules;
    }

    // Primary input port terminals.
    for (const rtl::PortInInfo& p : base_.in_ports)
      (void)g.intern_terminal(port_terminal_name(p.name));

    // RT rules from templates.
    for (const rtl::RTTemplate& t : base_.templates) {
      NtId lhs = g.find_nonterminal(nonterminal_name_for(t.dest));
      if (lhs < 0) {
        diags_.warning({}, fmt("template {} targets unknown storage '{}'",
                               t.id, t.dest));
        continue;
      }
      for (int variant = 0; variant < 2; ++variant) {
        bool elide_low = variant == 1;
        if (elide_low &&
            (!options_.elide_low_slices || !has_low_slice(t.value.get())))
          break;
        PatNodePtr rhs;
        if (t.dest_kind == rtl::DestKind::Memory) {
          std::vector<PatNodePtr> kids;
          kids.push_back(lower(*t.addr, g, /*elide_low=*/false));
          kids.push_back(lower(*t.value, g, elide_low));
          rhs = pat_term(g.intern_terminal(store_terminal_name(t.dest)),
                         std::move(kids));
        } else {
          rhs = lower(*t.value, g, elide_low);
        }
        if (options_.skip_self_moves &&
            rhs->kind == PatNode::Kind::NonTerm && rhs->nt == lhs) {
          if (!elide_low) ++out.stats.self_moves_skipped;
          continue;
        }
        int id = g.add_rule(lhs, std::move(rhs), /*cost=*/1, RuleKind::RT,
                            t.id);
        ++out.stats.rt_rules;
        if (elide_low) ++out.stats.low_slice_variants;
        if (g.rule(id).is_chain()) ++out.stats.chain_rules;
      }
    }

    return out;
  }

  /// True for slice operators selecting the low half: custom "bitsK_0".
  static bool is_low_slice(const rtl::RTNode& n) {
    return n.kind == rtl::RTNode::Kind::Op &&
           n.op.kind == hdl::OpKind::Custom &&
           n.op.custom.rfind("bits", 0) == 0 &&
           n.op.custom.size() > 6 &&
           n.op.custom.compare(n.op.custom.size() - 2, 2, "_0") == 0 &&
           n.children.size() == 1;
  }

  static bool has_low_slice(const rtl::RTNode* n) {
    if (!n) return false;
    if (is_low_slice(*n)) return true;
    for (const rtl::RTNodePtr& c : n->children)
      if (has_low_slice(c.get())) return true;
    return false;
  }

 private:
  /// Table 2: the L() mapping from template expressions to rule RHS trees.
  PatNodePtr lower(const rtl::RTNode& n, TreeGrammar& g, bool elide_low) {
    if (elide_low && is_low_slice(n))
      return lower(*n.children[0], g, elide_low);
    switch (n.kind) {
      case rtl::RTNode::Kind::HardConst:
        return pat_const_leaf(n.value);
      case rtl::RTNode::Kind::Imm:
        return pat_imm(n.imm_bits);
      case rtl::RTNode::Kind::RegRead:
        // Reference to SEQ -> NonTerm (registers & mode registers).
        return pat_nonterm(
            g.intern_nonterminal(nonterminal_name_for(n.name)));
      case rtl::RTNode::Kind::PortIn:
        // Reference to PORTS -> Term.
        return pat_term(g.intern_terminal(port_terminal_name(n.name)), {});
      case rtl::RTNode::Kind::MemLoad: {
        std::vector<PatNodePtr> kids;
        kids.push_back(lower(*n.children[0], g, elide_low));
        return pat_term(
            g.intern_terminal(load_terminal_name(n.name, n.width)),
            std::move(kids));
      }
      case rtl::RTNode::Kind::Op: {
        if (options_.elide_extension_ops &&
            (n.op.kind == hdl::OpKind::Sxt ||
             n.op.kind == hdl::OpKind::Zxt) &&
            n.children.size() == 1)
          return lower(*n.children[0], g, elide_low);
        std::vector<PatNodePtr> kids;
        kids.reserve(n.children.size());
        for (const rtl::RTNodePtr& c : n.children)
          kids.push_back(lower(*c, g, elide_low));
        return pat_term(g.intern_terminal(n.op.name()), std::move(kids));
      }
    }
    return pat_const_leaf(0);
  }

  const rtl::TemplateBase& base_;
  BuildOptions options_;
  util::DiagnosticSink& diags_;
};

}  // namespace

BuiltGrammar build_grammar(const rtl::TemplateBase& base,
                           const BuildOptions& options,
                           util::DiagnosticSink& diags) {
  return Builder(base, options, diags).run();
}

}  // namespace record::grammar
