// Backus-Naur rendering of tree grammars, in the spirit of iburg input specs.
#pragma once

#include <string>

#include "grammar/grammar.h"

namespace record::grammar {

/// Renders the complete grammar as an iburg-style specification:
///
///   %start START
///   %term ASSIGN=1 #const=2 ...
///   START: ASSIGN($dest:ACC, nt:ACC) = 0 ;   /* start */
///   nt:ACC: +.32(nt:ACC, load:ram.16(nt:AR1)) = 1 ;  /* RT #12 */
///
/// Deterministic output (rule order) so tests can snapshot fragments.
[[nodiscard]] std::string to_bnf(const TreeGrammar& g);

}  // namespace record::grammar
