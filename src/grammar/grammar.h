// Tree grammar representation (paper section 3.1).
//
// G = (ΣT, ΣN, S, R, c): terminals, non-terminals, start symbol, rules and a
// cost function. Rules are "X -> t" where t is a tree over terminals with
// non-terminal leaves. Three rule groups exist:
//   start rules  START -> ASSIGN(Term(dest), NonTerm(dest))      cost 0
//   RT rules     NonTerm(dest) -> L(exp)                         cost 1
//   stop rules   NonTerm(REG) -> Term(REG)                       cost 0
//
// Pattern leaves Imm/Const specialise matching on the designated constant
// terminal "#const": Imm(w) matches any constant fitting w bits (an
// instruction-word immediate field), Const(v) matches exactly the hardwired
// value v.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace record::grammar {

using NtId = int;    // non-terminal index; 0 is always START
using TermId = int;  // terminal index

inline constexpr NtId kStart = 0;
inline constexpr int kInfCost = std::numeric_limits<int>::max() / 4;

struct PatNode;
using PatNodePtr = std::unique_ptr<PatNode>;

struct PatNode {
  enum class Kind : std::uint8_t {
    Term,     // terminal with children (operators) or leaf (registers/ports)
    NonTerm,  // non-terminal leaf
    Imm,      // immediate field leaf: matches #const fitting `width` bits
    Const     // hardwired-constant leaf: matches #const of exactly `value`
  };

  Kind kind = Kind::Term;
  TermId term = -1;          // Term
  NtId nt = -1;              // NonTerm
  int width = 0;             // Imm
  std::vector<int> imm_bits; // Imm: instruction-word bit positions
  std::int64_t value = 0;    // Const
  std::vector<PatNodePtr> children;

  [[nodiscard]] PatNodePtr clone() const;
};

[[nodiscard]] PatNodePtr pat_term(TermId t, std::vector<PatNodePtr> children);
[[nodiscard]] PatNodePtr pat_nonterm(NtId nt);
[[nodiscard]] PatNodePtr pat_imm(std::vector<int> bits);
[[nodiscard]] PatNodePtr pat_const_leaf(std::int64_t value);

enum class RuleKind : std::uint8_t { Start, RT, Stop };

struct Rule {
  int id = -1;
  NtId lhs = -1;
  PatNodePtr pattern;  // for chain rules the pattern is a bare NonTerm leaf
  int cost = 0;
  RuleKind kind = RuleKind::RT;
  int template_id = -1;  // RT rules: originating RT template

  /// Chain rule: RHS is a single non-terminal leaf.
  [[nodiscard]] bool is_chain() const {
    return pattern && pattern->kind == PatNode::Kind::NonTerm;
  }
};

class TreeGrammar {
 public:
  // --- symbol interning ----------------------------------------------------

  TermId intern_terminal(std::string_view name);
  NtId intern_nonterminal(std::string_view name);

  [[nodiscard]] TermId find_terminal(std::string_view name) const;
  [[nodiscard]] NtId find_nonterminal(std::string_view name) const;

  [[nodiscard]] const std::string& terminal_name(TermId t) const {
    return terminals_.at(static_cast<std::size_t>(t));
  }
  [[nodiscard]] const std::string& nonterminal_name(NtId n) const {
    return nonterminals_.at(static_cast<std::size_t>(n));
  }
  [[nodiscard]] int terminal_count() const {
    return static_cast<int>(terminals_.size());
  }
  [[nodiscard]] int nonterminal_count() const {
    return static_cast<int>(nonterminals_.size());
  }

  // --- rules --------------------------------------------------------------

  /// Adds a rule and returns its id.
  int add_rule(NtId lhs, PatNodePtr pattern, int cost, RuleKind kind,
               int template_id = -1);

  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }
  [[nodiscard]] const Rule& rule(int id) const {
    return rules_.at(static_cast<std::size_t>(id));
  }

  /// Non-chain rules whose pattern root is the given terminal.
  [[nodiscard]] const std::vector<int>& rules_for_terminal(TermId t) const;

  /// Chain rules X -> Y grouped by Y.
  [[nodiscard]] const std::vector<int>& chain_rules_from(NtId y) const;

  /// The designated constant terminal "#const" (interned on construction).
  [[nodiscard]] TermId const_terminal() const { return const_term_; }
  /// The designated "ASSIGN" terminal.
  [[nodiscard]] TermId assign_terminal() const { return assign_term_; }

  TreeGrammar();

 private:
  /// Heterogeneous string hashing: find_terminal(string_view) probes the
  /// index without materialising a std::string per lookup (the subject
  /// mapper resolves a terminal per IR node).
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
    std::size_t operator()(const std::string& s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<std::string> terminals_;
  std::vector<std::string> nonterminals_;
  std::unordered_map<std::string, TermId, StringHash, std::equal_to<>>
      term_index_;
  std::unordered_map<std::string, NtId, StringHash, std::equal_to<>>
      nt_index_;
  std::vector<Rule> rules_;
  std::vector<std::vector<int>> by_terminal_;
  std::vector<std::vector<int>> chains_from_;
  TermId const_term_ = -1;
  TermId assign_term_ = -1;
};

/// Renders a pattern in iburg-ish notation ("+.16(nt_ACC, #imm8)").
[[nodiscard]] std::string pattern_to_string(const TreeGrammar& g,
                                            const PatNode& p);

/// Renders a whole rule ("nt:ACC <- +.16(nt:ACC, #imm8)") — the display
/// name used by coverage reports and explain traces.
[[nodiscard]] std::string rule_to_string(const TreeGrammar& g, const Rule& r);

}  // namespace record::grammar
