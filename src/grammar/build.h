// Tree-grammar construction from an RT template base (paper section 3.1).
//
// Terminals:     { ASSIGN } ∪ Term(SEQ ∪ PORTS ∪ OP ∪ CONST)
// Non-terminals: { START }  ∪ NonTerm(SEQ ∪ PORTS)
// Rules:
//   start rules  START -> ASSIGN(Term(dest), NonTerm(dest))  for each dest,
//                cost 0 — making the start symbol generic over destinations
//                so the cost of moving a result to its destination is part
//                of the optimum;
//   RT rules     NonTerm(dest) -> L(exp) for each template "dest := exp",
//                cost 1 (single-cycle RTs), with L per table 2;
//   stop rules   NonTerm(REG) -> Term(REG) for each readable register,
//                cost 0 — terminating derivations at ET leaves.
#pragma once

#include "grammar/grammar.h"
#include "rtl/template.h"
#include "util/diagnostics.h"

namespace record::grammar {

struct BuildOptions {
  /// Treat pure width adapters (SXT/ZXT operator nodes) as wiring: patterns
  /// skip them so expression trees need no explicit extension nodes.
  /// (Semantical knowledge about hardware operators, paper section 3.)
  bool elide_extension_ops = true;
  /// For RT rules containing a low-half slice (bitsK_0, e.g. the SACL store
  /// path of an accumulator twice as wide as memory), additionally emit a
  /// variant rule with the slice elided: storing a value that was
  /// sign-extended on the way in is the identity, so "mem := lo(ACC)" also
  /// covers plain "mem := <16-bit value in ACC>". Dual of
  /// elide_extension_ops.
  bool elide_low_slices = true;
  /// Skip templates that copy a location to itself (no-op "hold" RTs);
  /// they can never improve a derivation.
  bool skip_self_moves = true;
};

struct BuildStats {
  std::size_t start_rules = 0;
  std::size_t rt_rules = 0;
  std::size_t stop_rules = 0;
  std::size_t chain_rules = 0;     // subset of rt_rules with NonTerm RHS
  std::size_t self_moves_skipped = 0;
  std::size_t low_slice_variants = 0;
};

struct BuiltGrammar {
  TreeGrammar grammar;
  BuildStats stats;
};

/// Naming helpers shared with subject construction (select/subject_map).
[[nodiscard]] std::string dest_terminal_name(std::string_view storage);
[[nodiscard]] std::string reg_terminal_name(std::string_view storage);
[[nodiscard]] std::string port_terminal_name(std::string_view port);
[[nodiscard]] std::string load_terminal_name(std::string_view mem, int width);
[[nodiscard]] std::string store_terminal_name(std::string_view mem);
[[nodiscard]] std::string nonterminal_name_for(std::string_view storage);

[[nodiscard]] BuiltGrammar build_grammar(const rtl::TemplateBase& base,
                                         const BuildOptions& options,
                                         util::DiagnosticSink& diags);

}  // namespace record::grammar
