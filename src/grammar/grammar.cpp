#include "grammar/grammar.h"

#include <sstream>

namespace record::grammar {

PatNodePtr PatNode::clone() const {
  auto out = std::make_unique<PatNode>();
  out->kind = kind;
  out->term = term;
  out->nt = nt;
  out->width = width;
  out->imm_bits = imm_bits;
  out->value = value;
  out->children.reserve(children.size());
  for (const PatNodePtr& c : children) out->children.push_back(c->clone());
  return out;
}

PatNodePtr pat_term(TermId t, std::vector<PatNodePtr> children) {
  auto p = std::make_unique<PatNode>();
  p->kind = PatNode::Kind::Term;
  p->term = t;
  p->children = std::move(children);
  return p;
}

PatNodePtr pat_nonterm(NtId nt) {
  auto p = std::make_unique<PatNode>();
  p->kind = PatNode::Kind::NonTerm;
  p->nt = nt;
  return p;
}

PatNodePtr pat_imm(std::vector<int> bits) {
  auto p = std::make_unique<PatNode>();
  p->kind = PatNode::Kind::Imm;
  p->width = static_cast<int>(bits.size());
  p->imm_bits = std::move(bits);
  return p;
}

PatNodePtr pat_const_leaf(std::int64_t value) {
  auto p = std::make_unique<PatNode>();
  p->kind = PatNode::Kind::Const;
  p->value = value;
  return p;
}

TreeGrammar::TreeGrammar() {
  (void)intern_nonterminal("START");  // NtId 0
  assign_term_ = intern_terminal("ASSIGN");
  const_term_ = intern_terminal("#const");
}

TermId TreeGrammar::intern_terminal(std::string_view name) {
  auto it = term_index_.find(name);
  if (it != term_index_.end()) return it->second;
  TermId id = static_cast<TermId>(terminals_.size());
  terminals_.emplace_back(name);
  term_index_.emplace(std::string(name), id);
  by_terminal_.emplace_back();
  return id;
}

NtId TreeGrammar::intern_nonterminal(std::string_view name) {
  auto it = nt_index_.find(name);
  if (it != nt_index_.end()) return it->second;
  NtId id = static_cast<NtId>(nonterminals_.size());
  nonterminals_.emplace_back(name);
  nt_index_.emplace(std::string(name), id);
  chains_from_.emplace_back();
  return id;
}

TermId TreeGrammar::find_terminal(std::string_view name) const {
  auto it = term_index_.find(name);
  return it == term_index_.end() ? -1 : it->second;
}

NtId TreeGrammar::find_nonterminal(std::string_view name) const {
  auto it = nt_index_.find(name);
  return it == nt_index_.end() ? -1 : it->second;
}

int TreeGrammar::add_rule(NtId lhs, PatNodePtr pattern, int cost,
                          RuleKind kind, int template_id) {
  Rule r;
  r.id = static_cast<int>(rules_.size());
  r.lhs = lhs;
  r.pattern = std::move(pattern);
  r.cost = cost;
  r.kind = kind;
  r.template_id = template_id;
  if (r.is_chain()) {
    chains_from_.at(static_cast<std::size_t>(r.pattern->nt)).push_back(r.id);
  } else if (r.pattern && r.pattern->kind == PatNode::Kind::Term) {
    by_terminal_.at(static_cast<std::size_t>(r.pattern->term))
        .push_back(r.id);
  } else if (r.pattern && (r.pattern->kind == PatNode::Kind::Imm ||
                           r.pattern->kind == PatNode::Kind::Const)) {
    // Rules rooted in Imm/Const leaves attach to the constant terminal.
    by_terminal_.at(static_cast<std::size_t>(const_term_)).push_back(r.id);
  }
  rules_.push_back(std::move(r));
  return rules_.back().id;
}

const std::vector<int>& TreeGrammar::rules_for_terminal(TermId t) const {
  static const std::vector<int> kEmpty;
  if (t < 0 || t >= terminal_count()) return kEmpty;
  return by_terminal_[static_cast<std::size_t>(t)];
}

const std::vector<int>& TreeGrammar::chain_rules_from(NtId y) const {
  static const std::vector<int> kEmpty;
  if (y < 0 || y >= nonterminal_count()) return kEmpty;
  return chains_from_[static_cast<std::size_t>(y)];
}

namespace {

void render(const TreeGrammar& g, const PatNode& p, std::ostream& os) {
  switch (p.kind) {
    case PatNode::Kind::Term:
      os << g.terminal_name(p.term);
      if (!p.children.empty()) {
        os << '(';
        for (std::size_t i = 0; i < p.children.size(); ++i) {
          if (i) os << ", ";
          render(g, *p.children[i], os);
        }
        os << ')';
      }
      break;
    case PatNode::Kind::NonTerm:
      os << g.nonterminal_name(p.nt);
      break;
    case PatNode::Kind::Imm:
      os << "#imm" << p.width;
      break;
    case PatNode::Kind::Const:
      os << '#' << p.value;
      break;
  }
}

}  // namespace

std::string pattern_to_string(const TreeGrammar& g, const PatNode& p) {
  std::ostringstream os;
  render(g, p, os);
  return os.str();
}

std::string rule_to_string(const TreeGrammar& g, const Rule& r) {
  std::ostringstream os;
  os << g.nonterminal_name(r.lhs) << " <- ";
  render(g, *r.pattern, os);
  return os.str();
}

}  // namespace record::grammar
