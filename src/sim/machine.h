// RT-level instruction-set simulator.
//
// Executes the *emitted binary words* of a compiled program against the
// machine model, with no help from selection metadata: each word is decoded
// purely from its bits. A template fires when its BDD execution condition
// evaluates true under the word's instruction bits (I[k]), the current mode
// register state (M:<inst>[k]) and resolvable dynamic bits — register
// contents read as control signals (S:<inst>.<port>[k]) and primary input
// ports (S:@<port>[k]). All fired templates execute concurrently with
// read-before-write cycle semantics: every value and address tree is
// evaluated against the pre-cycle state, then all writes commit at once —
// exactly how the modeled single-cycle datapath behaves, and exactly what
// compaction's dependence rules must respect.
//
// The decoder REJECTS malformed words instead of silently executing them:
//   * a word under which no template fires,
//   * two fired templates writing different values to one location
//     (datapath contention),
//   * a memory write whose decoded address lies outside the memory,
//   * a taken branch whose decoded target lies outside the program,
//   * a condition that cannot be resolved from machine state (opaque
//     data-dependent control, e.g. an ISZERO status unit) — reported as
//     `unsupported` rather than failed.
//
// A program that ends without branching halts when the PC runs past the
// last word. Generated loop programs never halt, so runs also stop after
// `max_taken_branches` taken branches (the IR reference evaluator uses the
// same budget — see sim/eval.h).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "emit/encode.h"
#include "rtl/template.h"
#include "sim/eval.h"
#include "sim/state.h"

namespace record::sim {

struct MachineOptions {
  int max_steps = 100000;
  int max_taken_branches = 4;
  /// Values of primary input ports (default 0).
  std::map<std::string, std::int64_t> in_ports;
};

struct MachineResult {
  bool ok = false;
  /// Decode hit control state this simulator cannot resolve (opaque
  /// dynamic condition bits or a custom unit without semantics).
  bool unsupported = false;
  std::string error;
  StopReason stop = StopReason::kHalt;
  std::int64_t steps = 0;
  std::int64_t taken_branches = 0;
  State state;
};

class Machine {
 public:
  /// Storage acting as the program counter (matches the selector's branch
  /// template convention, select::CodeSelector::kProgramCounter).
  static constexpr const char* kProgramCounter = "PC";

  explicit Machine(const rtl::TemplateBase& base);

  /// Runs the encoded program from address 0. `initial` (optional) seeds
  /// the pre-execution state.
  [[nodiscard]] MachineResult run(const emit::Assembly& assembly,
                                  const MachineOptions& options = {},
                                  const State* initial = nullptr) const;

 private:
  enum class VarKind : std::uint8_t {
    kInstr,        // I[k]
    kMode,         // M:<inst>[k]
    kRegBit,       // S:<inst>.<port>[k] where <inst> is a register/modereg
    kPortBit,      // S:@<port>[k]
    kUnresolvable  // opaque / memory-dependent / unknown
  };
  struct VarBind {
    VarKind kind = VarKind::kUnresolvable;
    int bit = 0;
    std::string name;  // register / port instance
  };

  const rtl::TemplateBase& base_;
  std::vector<VarBind> vars_;                 // [bdd variable]
  std::vector<std::vector<int>> support_;     // [template] cond support vars
  std::vector<bool> has_unresolvable_;        // [template]
};

}  // namespace record::sim
