// The semantic oracle: runs a compiled program on the RT-level simulator
// (sim/machine.h) and the same IR program on the reference evaluator
// (sim/eval.h) from an identical initial machine state, then compares the
// final contents of every location the program can observe:
//
//   * the storage behind every program binding (registers and memory cells),
//   * every memory cell written by a dynamic store.
//
// Both executors use the same step and taken-branch budgets, so they stop
// at the same program point even for the intentionally non-terminating loop
// programs testgen generates. Divergence of any compared location, stop
// reason or branch count is a semantic failure; a decoder rejection of the
// emitted words is a decode failure; programs touching machinery without
// executable semantics (opaque custom units, unresolvable dynamic control)
// are skipped, not failed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/compiler.h"
#include "ir/program.h"
#include "sim/eval.h"
#include "sim/machine.h"

namespace record::sim {

enum class CheckStatus : std::uint8_t {
  kAgree,         // every compared location matches
  kDiverged,      // simulator and reference computed different state
  kDecodeReject,  // the decoder rejected the emitted words
  kSkipped        // not comparable (no executable semantics for some part)
};

[[nodiscard]] std::string_view to_string(CheckStatus s);

struct CheckOptions {
  int max_steps = 100000;
  /// Shared taken-branch budget (see sim/eval.h).
  int max_taken_branches = 4;
  /// Primary input-port values seen by the simulator.
  std::map<std::string, std::int64_t> in_ports;
  /// Initial-state overrides applied to both executors (tests pin known
  /// inputs this way; everything else reads sim::initial_value).
  std::vector<std::pair<std::string, std::int64_t>> init_regs;
  std::vector<std::tuple<std::string, std::int64_t, std::int64_t>> init_mem;
  /// Spill-scratch placement of the compile under test (mirror the job's
  /// sched::SpillOptions): simulator writes inside this window are
  /// compiler-internal and excluded from the stray-write comparison.
  /// Empty memory = the target's first memory (the spiller's default).
  std::string scratch_memory;
  std::int64_t scratch_base = 0x70;
  int scratch_slots = 8;
};

struct CheckReport {
  CheckStatus status = CheckStatus::kSkipped;
  /// Divergence description / reject diagnostic / skip reason.
  std::string detail;
  EvalResult eval;
  MachineResult sim;

  [[nodiscard]] bool agree() const { return status == CheckStatus::kAgree; }
};

/// Runs the full semantic check for one compiled program.
[[nodiscard]] CheckReport check_semantics(const ir::Program& prog,
                                          const core::CompileResult& result,
                                          const core::RetargetResult& target,
                                          const CheckOptions& options = {});

}  // namespace record::sim
