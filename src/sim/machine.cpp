#include "sim/machine.h"

#include <functional>

#include "sim/value.h"
#include "util/strings.h"

namespace record::sim {

using util::fmt;

namespace {

/// Parses a trailing "[<bit>]" index; false if absent/malformed.
bool parse_bit_suffix(std::string_view name, std::string_view& stem,
                      int& bit) {
  if (name.empty() || name.back() != ']') return false;
  std::size_t open = name.rfind('[');
  if (open == std::string_view::npos) return false;
  std::string_view digits = name.substr(open + 1, name.size() - open - 2);
  if (digits.empty()) return false;
  bit = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    bit = bit * 10 + (c - '0');
  }
  stem = name.substr(0, open);
  return true;
}

}  // namespace

Machine::Machine(const rtl::TemplateBase& base) : base_(base) {
  const bdd::BddManager& mgr = *base.mgr;

  vars_.resize(static_cast<std::size_t>(mgr.var_count()));
  for (int v = 0; v < mgr.var_count(); ++v) {
    const std::string& n = mgr.var_name(v);
    VarBind& b = vars_[static_cast<std::size_t>(v)];
    std::string_view stem;
    int bit = 0;
    if (!parse_bit_suffix(n, stem, bit)) continue;
    b.bit = bit;
    if (stem == "I") {
      b.kind = VarKind::kInstr;
    } else if (stem.rfind("M:", 0) == 0) {
      b.kind = VarKind::kMode;
      b.name = std::string(stem.substr(2));
    } else if (stem.rfind("S:@", 0) == 0) {
      b.kind = VarKind::kPortBit;
      b.name = std::string(stem.substr(3));
    } else if (stem.rfind("S:", 0) == 0) {
      // "S:<inst>.<port>": resolvable when <inst> is register-like storage
      // (its out port is its stored value). Memory reads, opaque logic and
      // the other "S:..." tags stay unresolvable.
      std::string_view body = stem.substr(2);
      std::size_t dot = body.find('.');
      if (dot != std::string_view::npos &&
          body.find(':') == std::string_view::npos) {
        std::string inst(body.substr(0, dot));
        const rtl::StorageInfo* s = base.find_storage(inst);
        if (s && (s->kind == rtl::DestKind::Register ||
                  s->kind == rtl::DestKind::ModeReg)) {
          b.kind = VarKind::kRegBit;
          b.name = std::move(inst);
        }
      }
    }
  }

  support_.reserve(base.templates.size());
  has_unresolvable_.reserve(base.templates.size());
  for (const rtl::RTTemplate& t : base.templates) {
    std::vector<int> sup = mgr.support(t.cond);
    bool unres = false;
    for (int v : sup)
      if (vars_[static_cast<std::size_t>(v)].kind == VarKind::kUnresolvable)
        unres = true;
    support_.push_back(std::move(sup));
    has_unresolvable_.push_back(unres);
  }
}

MachineResult Machine::run(const emit::Assembly& assembly,
                           const MachineOptions& options,
                           const State* initial) const {
  const bdd::BddManager& mgr = *base_.mgr;
  MachineResult result;
  result.state = initial ? *initial : State(base_);
  for (const auto& [name, v] : options.in_ports)
    result.state.set_in_port(name, v);

  auto fail = [&](std::string why, bool unsupported = false) {
    result.ok = false;
    result.unsupported = unsupported;
    result.error = std::move(why);
    return result;
  };

  const std::size_t word_count = assembly.words.size();
  // Words are addressed sequentially from 0 (emit::encode's layout).
  for (std::size_t i = 0; i < word_count; ++i)
    if (assembly.words[i].address != static_cast<int>(i))
      return fail(fmt("word {} carries address {}; expected a dense layout",
                      i, assembly.words[i].address));

  std::int64_t current = 0;  // current word address while executing
  std::string err;
  bool unsupported = false;

  // Branch-delay-slot machinery: on machines whose PC register carries a
  // write DELAY, a taken branch is held pending while the following
  // `pending_left` words (the delay slots) execute; only then does the PC
  // write land and the branch retire against the branch budget.
  const int delay_slots = base_.branch_delay_slots;
  std::int64_t pending_target = 0;
  int pending_left = -1;  // < 0: no branch in flight

  /// Resolves one BDD variable against the word bits and machine state.
  auto resolve_var = [&](int v, const emit::EncodedWord& w)
      -> std::optional<bool> {
    const VarBind& b = vars_[static_cast<std::size_t>(v)];
    switch (b.kind) {
      case VarKind::kInstr:
        return b.bit >= 0 &&
               b.bit < static_cast<int>(w.bits.size()) &&
               w.bits[static_cast<std::size_t>(b.bit)];
      case VarKind::kMode:
      case VarKind::kRegBit: {
        std::uint64_t bits = static_cast<std::uint64_t>(
            result.state.read_reg(b.name));
        return b.bit < 64 && ((bits >> b.bit) & 1u) != 0;
      }
      case VarKind::kPortBit: {
        std::uint64_t bits = static_cast<std::uint64_t>(
            result.state.read_in_port(b.name, 0));
        return b.bit < 64 && ((bits >> b.bit) & 1u) != 0;
      }
      case VarKind::kUnresolvable:
        return std::nullopt;
    }
    return std::nullopt;
  };

  /// Evaluates one RT tree against the pre-cycle state.
  std::function<std::optional<Val>(const rtl::RTNode&,
                                   const emit::EncodedWord&)>
      eval_node = [&](const rtl::RTNode& n,
                      const emit::EncodedWord& w) -> std::optional<Val> {
    switch (n.kind) {
      case rtl::RTNode::Kind::HardConst:
        return Val{canon(n.value, n.width), n.width};
      case rtl::RTNode::Kind::Imm: {
        std::int64_t v = 0;
        for (std::size_t j = 0; j < n.imm_bits.size(); ++j) {
          int pos = n.imm_bits[j];
          if (pos >= 0 && pos < static_cast<int>(w.bits.size()) &&
              w.bits[static_cast<std::size_t>(pos)])
            v |= std::int64_t{1} << j;
        }
        int width = static_cast<int>(n.imm_bits.size());
        return Val{canon(v, width), width};
      }
      case rtl::RTNode::Kind::RegRead: {
        if (n.name == kProgramCounter)
          return Val{canon(current, n.width), n.width};
        int width = result.state.reg_width(n.name);
        if (width == 0) width = n.width;
        return Val{result.state.read_reg(n.name), width};
      }
      case rtl::RTNode::Kind::PortIn:
        return Val{result.state.read_in_port(n.name, n.width), n.width};
      case rtl::RTNode::Kind::MemLoad: {
        std::optional<Val> a = eval_node(*n.children[0], w);
        if (!a) return std::nullopt;
        // The address port truncates to its wire width; reads outside the
        // modeled cell count are harmless (they return deterministic
        // initial contents) — only *writes* are bounds-checked.
        std::int64_t addr =
            static_cast<std::int64_t>(bits_of(a->v, a->width));
        return Val{result.state.read_mem(n.name, addr),
                   result.state.mem_width(n.name)};
      }
      case rtl::RTNode::Kind::Op: {
        std::vector<Val> args;
        args.reserve(n.children.size());
        for (const rtl::RTNodePtr& c : n.children) {
          std::optional<Val> v = eval_node(*c, w);
          if (!v) return std::nullopt;
          args.push_back(*v);
        }
        std::string why;
        std::optional<Val> out = apply_op(n.op, args, why);
        if (!out) {
          err = why;
          unsupported = true;
          return std::nullopt;
        }
        return out;
      }
    }
    err = "malformed RT node";
    return std::nullopt;
  };

  while (current < static_cast<std::int64_t>(word_count)) {
    if (++result.steps > options.max_steps) {
      result.stop = StopReason::kStepBudget;
      result.ok = true;
      return result;
    }
    const emit::EncodedWord& w =
        assembly.words[static_cast<std::size_t>(current)];

    // --- decode: which templates fire under (bits, mode, dynamic state) ---
    std::vector<const rtl::RTTemplate*> fired;
    for (std::size_t t = 0; t < base_.templates.size(); ++t) {
      const rtl::RTTemplate& tmpl = base_.templates[t];
      if (!has_unresolvable_[t]) {
        bdd::Assignment asg;
        asg.reserve(support_[t].size());
        for (int v : support_[t]) asg.emplace_back(v, *resolve_var(v, w));
        if (mgr.eval(tmpl.cond, asg)) fired.push_back(&tmpl);
        continue;
      }
      // Opaque dynamic bits in the condition: fix everything resolvable and
      // require the residue to be constant.
      bdd::Ref r = tmpl.cond;
      for (int v : support_[t])
        if (std::optional<bool> val = resolve_var(v, w))
          r = base_.mgr->restrict(r, v, *val);
      if (r == bdd::kFalse) continue;
      if (r == bdd::kTrue) {
        fired.push_back(&tmpl);
        continue;
      }
      return fail(fmt("word {} ({}): condition of '{}' depends on control "
                      "state the simulator cannot resolve",
                      current, w.hex(), tmpl.signature()),
                  /*unsupported=*/true);
    }
    if (fired.empty())
      return fail(fmt("word {} ({}): no RT template fires — not a valid "
                      "instruction",
                      current, w.hex()));

    // --- evaluate all fired transfers against the pre-cycle state ----------
    struct Write {
      const rtl::RTTemplate* t;
      std::int64_t addr = 0;  // Memory destinations
      std::int64_t value = 0;
    };
    std::vector<Write> writes;
    writes.reserve(fired.size());
    bool taken = false;
    std::int64_t branch_target = 0;
    const rtl::RTTemplate* branch_rt = nullptr;

    for (const rtl::RTTemplate* t : fired) {
      std::optional<Val> v = eval_node(*t->value, w);
      if (!v)
        return fail(fmt("word {} ({}): cannot evaluate '{}': {}", current,
                        w.hex(), t->signature(), err),
                    unsupported);
      Write wr{t, 0, canon(v->v, t->dest_width)};
      if (t->dest_kind == rtl::DestKind::Memory) {
        std::optional<Val> a = eval_node(*t->addr, w);
        if (!a)
          return fail(fmt("word {} ({}): cannot evaluate the address of "
                          "'{}': {}",
                          current, w.hex(), t->signature(), err),
                      unsupported);
        wr.addr = static_cast<std::int64_t>(bits_of(a->v, a->width));
        std::int64_t cells = result.state.mem_cells(t->dest);
        if (cells > 0 && wr.addr >= cells)
          return fail(fmt("word {} ({}): write address {} out of range for "
                          "memory '{}' ({} cells)",
                          current, w.hex(), wr.addr, t->dest, cells));
      }
      if (t->dest_kind == rtl::DestKind::Register &&
          t->dest == kProgramCounter) {
        std::int64_t target =
            static_cast<std::int64_t>(bits_of(wr.value, t->dest_width));
        if (taken && target != branch_target)
          return fail(fmt("word {} ({}): conflicting branch targets {} and "
                          "{}",
                          current, w.hex(), branch_target, target));
        taken = true;
        branch_target = target;
        branch_rt = t;
        continue;
      }
      writes.push_back(wr);
    }

    // --- contention check + commit -----------------------------------------
    // Two fired units driving conflicting values into one location is a
    // structural hazard. Equal values are tolerated: commutative template
    // twins (`R1 := R0^R1` / `R1 := R1^R0`) legitimately share an encoding
    // and fire together.
    for (std::size_t a = 0; a < writes.size(); ++a)
      for (std::size_t b = a + 1; b < writes.size(); ++b) {
        if (writes[a].t->dest != writes[b].t->dest) continue;
        if (writes[a].t->dest_kind == rtl::DestKind::Memory &&
            writes[a].addr != writes[b].addr)
          continue;
        if (writes[a].value != writes[b].value)
          return fail(fmt("word {} ({}): write contention on '{}': '{}' "
                          "drives {} while '{}' drives {}",
                          current, w.hex(), writes[a].t->dest,
                          writes[a].t->signature(), writes[a].value,
                          writes[b].t->signature(), writes[b].value));
      }
    for (const Write& wr : writes) {
      switch (wr.t->dest_kind) {
        case rtl::DestKind::Register:
        case rtl::DestKind::ModeReg:
          result.state.write_reg(wr.t->dest, wr.value);
          break;
        case rtl::DestKind::Memory:
          result.state.write_mem(wr.t->dest, wr.addr, wr.value);
          break;
        case rtl::DestKind::ProcOut:
          result.state.write_out_port(wr.t->dest, wr.value,
                                      wr.t->dest_width);
          break;
      }
    }

    // --- advance -------------------------------------------------------------
    if (taken) {
      // Malformed targets are rejected even on the budget-exhausting
      // branch — loop programs always stop on the budget, and a corrupted
      // target must not slip through as a "clean" stop.
      if (branch_target > static_cast<std::int64_t>(word_count))
        return fail(fmt("word {} ({}): branch target {} out of range "
                        "(program has {} words; '{}')",
                        current, w.hex(), branch_target, word_count,
                        branch_rt->signature()));
      if (delay_slots > 0) {
        if (pending_left >= 0)
          return fail(fmt("word {} ({}): taken branch in the delay slot of "
                          "an earlier branch",
                          current, w.hex()));
        // The PC write is pending: the next `delay_slots` words execute
        // before it lands.
        pending_target = branch_target;
        pending_left = delay_slots;
        ++current;
      } else {
        ++result.taken_branches;
        if (result.taken_branches >= options.max_taken_branches) {
          result.stop = StopReason::kBranchBudget;
          result.ok = true;
          return result;
        }
        current = branch_target;
      }
    } else {
      ++current;
    }
    // Retire a pending branch once its delay-slot words have committed.
    if (!taken && pending_left >= 0 && --pending_left == 0) {
      pending_left = -1;
      ++result.taken_branches;
      if (result.taken_branches >= options.max_taken_branches) {
        result.stop = StopReason::kBranchBudget;
        result.ok = true;
        return result;
      }
      current = pending_target;
    }
  }

  result.stop = StopReason::kHalt;
  result.ok = true;
  return result;
}

}  // namespace record::sim
