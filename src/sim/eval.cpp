#include "sim/eval.h"

#include <map>

#include "select/subject_map.h"
#include "sim/value.h"
#include "treeparse/burs.h"
#include "util/strings.h"

namespace record::sim {

using util::fmt;

std::string_view to_string(StopReason r) {
  switch (r) {
    case StopReason::kHalt:
      return "halt";
    case StopReason::kBranchBudget:
      return "branch-budget";
    case StopReason::kStepBudget:
      return "step-budget";
  }
  return "?";
}

namespace {

/// One program evaluation: statement dispatch plus the width-faithful
/// expression interpreter.
class Evaluator {
 public:
  Evaluator(const ir::Program& prog, const core::RetargetResult& target,
            const EvalOptions& options, const State* initial)
      : prog_(prog),
        base_(*target.base),
        g_(target.tree_grammar),
        options_(options),
        mapper_(base_, g_, prog, map_diags_),
        parser_(g_),
        promote_memo_(prog.stmts().size(), -1) {
    result_.state = initial ? *initial : State(base_);
  }

  EvalResult run() {
    // Label addresses resolve to statement indices.
    std::map<std::string, std::size_t> labels;
    for (std::size_t i = 0; i < prog_.stmts().size(); ++i)
      if (prog_.stmts()[i].kind == ir::Stmt::Kind::LabelDef)
        labels[prog_.stmts()[i].label] = i;

    std::size_t pc = 0;
    while (pc < prog_.stmts().size()) {
      const ir::Stmt& stmt = prog_.stmts()[pc];
      if (stmt.kind == ir::Stmt::Kind::LabelDef) {
        ++pc;
        continue;
      }
      if (++result_.steps > options_.max_steps) {
        result_.stop = StopReason::kStepBudget;
        result_.ok = true;
        return std::move(result_);
      }
      switch (stmt.kind) {
        case ir::Stmt::Kind::Assign: {
          if (!exec_assign(stmt, pc)) return std::move(result_);
          ++pc;
          break;
        }
        case ir::Stmt::Kind::Store: {
          if (!exec_store(stmt, pc)) return std::move(result_);
          ++pc;
          break;
        }
        case ir::Stmt::Kind::Branch: {
          bool taken = true;
          if (stmt.branch != ir::BranchKind::Always) {
            const ir::Binding* b = prog_.binding_of(stmt.cond_var);
            if (!b) {
              fail(fmt("branch tests unbound '{}'", stmt.cond_var));
              return std::move(result_);
            }
            std::int64_t v = read_binding(*b);
            taken = (v == 0) == (stmt.branch == ir::BranchKind::IfZero);
          }
          if (!taken) {
            ++pc;
            break;
          }
          auto it = labels.find(stmt.label);
          if (it == labels.end()) {
            fail(fmt("branch target '{}' undefined", stmt.label));
            return std::move(result_);
          }
          ++result_.taken_branches;
          if (result_.taken_branches >= options_.max_taken_branches) {
            result_.stop = StopReason::kBranchBudget;
            result_.ok = true;
            return std::move(result_);
          }
          pc = it->second;
          break;
        }
        case ir::Stmt::Kind::LabelDef:
          break;  // unreachable
      }
    }
    result_.stop = StopReason::kHalt;
    result_.ok = true;
    return std::move(result_);
  }

 private:
  /// Marks the run failed; run() returns the result at its exits (callers
  /// of fail() must not move result_ themselves — the message and state
  /// would be gutted before run() hands them out).
  void fail(std::string why, bool unsupported = false) {
    result_.ok = false;
    result_.unsupported = unsupported;
    result_.error = std::move(why);
  }

  std::int64_t read_binding(const ir::Binding& b) {
    if (b.kind == ir::Binding::Kind::Register)
      return result_.state.read_reg(b.storage);
    return result_.state.read_mem(b.storage, b.cell);
  }

  bool exec_assign(const ir::Stmt& stmt, std::size_t pc) {
    const ir::Binding* b = prog_.binding_of(stmt.dest_var);
    if (!b) {
      fail(fmt("destination '{}' has no binding", stmt.dest_var));
      return false;
    }
    std::optional<Val> v = eval_expr(*stmt.rhs, stmt_promote(pc));
    if (!v) return false;
    if (b->kind == ir::Binding::Kind::Register)
      result_.state.write_reg(b->storage, v->v);
    else
      result_.state.write_mem(b->storage, b->cell, v->v);
    return true;
  }

  bool exec_store(const ir::Stmt& stmt, std::size_t pc) {
    bool promote = stmt_promote(pc);
    std::optional<Val> addr = eval_expr(*stmt.addr, promote);
    if (!addr) return false;
    std::optional<Val> v = eval_expr(*stmt.rhs, promote);
    if (!v) return false;
    std::int64_t cells = result_.state.mem_cells(stmt.mem);
    if (addr->v < 0 || (cells > 0 && addr->v >= cells)) {
      fail(fmt("store address {} out of range for memory '{}' ({} cells)",
               addr->v, stmt.mem, cells));
      return false;
    }
    result_.state.write_mem(stmt.mem, addr->v, v->v);
    result_.stores.emplace_back(stmt.mem, addr->v);
    return true;
  }

  /// Whether the statement at `pc` executes at promoted (accumulator)
  /// precision — exactly the selector's retry policy: promotion applies iff
  /// the naturally-mapped subject does not label. Memoised per statement.
  bool stmt_promote(std::size_t pc) {
    if (promote_memo_[pc] >= 0) return promote_memo_[pc] != 0;
    bool promote = false;
    const ir::Stmt& stmt = prog_.stmts()[pc];
    if (stmt.kind == ir::Stmt::Kind::Assign ||
        stmt.kind == ir::Stmt::Kind::Store) {
      util::DiagnosticSink diags;
      select::SubjectMapper mapper(base_, g_, prog_, diags);
      std::optional<treeparse::SubjectTree> subject = mapper.map_stmt(stmt);
      promote = !(subject && parser_.label(*subject).ok);
    }
    promote_memo_[pc] = promote ? 1 : 0;
    return promote;
  }

  /// Result width of an operator node: the width of the hardware unit the
  /// subject mapper would select — the resolved width (doubled under
  /// statement promotion for non-custom operators), widened x2/x4 when the
  /// target only offers the operation at fixed-point-promoted precision.
  int exec_width(const ir::Expr& e, bool promote) {
    int w = mapper_.resolve_width(e);
    if (promote && e.op != hdl::OpKind::Custom) w *= 2;
    if (e.op == hdl::OpKind::Custom || w <= 0) return w;
    rtl::OpSig sig;
    sig.kind = e.op;
    sig.width = w;
    if (g_.find_terminal(sig.name()) >= 0) return w;
    sig.width = w * 2;
    if (g_.find_terminal(sig.name()) >= 0) return w * 2;
    sig.width = w * 4;
    if (g_.find_terminal(sig.name()) >= 0) return w * 4;
    return w;  // not offered at all; selection would have failed too
  }

  std::optional<Val> eval_expr(const ir::Expr& e, bool promote) {
    switch (e.kind) {
      case ir::Expr::Kind::Const:
        return Val{e.value, 0};
      case ir::Expr::Kind::Var: {
        const ir::Binding* b = prog_.binding_of(e.var);
        if (!b) {
          fail(fmt("variable '{}' has no binding", e.var));
          return std::nullopt;
        }
        int w = b->kind == ir::Binding::Kind::Register
                    ? result_.state.reg_width(b->storage)
                    : result_.state.mem_width(b->storage);
        return Val{read_binding(*b), w};
      }
      case ir::Expr::Kind::Load: {
        std::optional<Val> addr = eval_expr(*e.args[0], promote);
        if (!addr) return std::nullopt;
        std::int64_t cells = result_.state.mem_cells(e.mem);
        if (addr->v < 0 || (cells > 0 && addr->v >= cells)) {
          fail(fmt("load address {} out of range for memory '{}' ({} cells)",
                   addr->v, e.mem, cells));
          return std::nullopt;
        }
        return Val{result_.state.read_mem(e.mem, addr->v),
                   result_.state.mem_width(e.mem)};
      }
      case ir::Expr::Kind::OpNode:
        break;
    }

    // Operator application.
    rtl::OpSig sig;
    if (e.op == hdl::OpKind::Custom && (e.custom == "lo" || e.custom == "hi") &&
        e.args.size() == 1) {
      int w = mapper_.resolve_width(*e.args[0]);
      if (w <= 1) {
        fail(fmt("{}() of a width-{} operand", e.custom, w),
             /*unsupported=*/true);
        return std::nullopt;
      }
      sig = e.custom == "lo" ? rtl::slice_op_sig(w / 2 - 1, 0)
                             : rtl::slice_op_sig(w - 1, w / 2);
    } else if (e.op == hdl::OpKind::Custom) {
      fail(fmt("custom operator '{}' has no executable semantics", e.custom),
           /*unsupported=*/true);
      return std::nullopt;
    } else {
      sig.kind = e.op;
      sig.width = exec_width(e, promote);
    }

    std::vector<Val> args;
    args.reserve(e.args.size());
    for (const ir::ExprPtr& a : e.args) {
      std::optional<Val> v = eval_expr(*a, promote);
      if (!v) return std::nullopt;
      args.push_back(*v);
    }
    std::string why;
    std::optional<Val> out = apply_op(sig, args, why);
    if (!out) {
      fail(std::move(why), /*unsupported=*/true);
      return std::nullopt;
    }
    return out;
  }

  const ir::Program& prog_;
  const rtl::TemplateBase& base_;
  const grammar::TreeGrammar& g_;
  const EvalOptions& options_;
  util::DiagnosticSink map_diags_;
  select::SubjectMapper mapper_;  // width resolution only
  treeparse::TreeParser parser_;
  std::vector<signed char> promote_memo_;
  EvalResult result_;
};

}  // namespace

EvalResult evaluate(const ir::Program& prog,
                    const core::RetargetResult& target,
                    const EvalOptions& options, const State* initial) {
  Evaluator ev(prog, target, options, initial);
  return ev.run();
}

}  // namespace record::sim
