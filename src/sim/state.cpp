#include "sim/state.h"

#include "sim/value.h"

namespace record::sim {

State::State(const rtl::TemplateBase& base) {
  for (const rtl::StorageInfo& s : base.storage) {
    switch (s.kind) {
      case rtl::DestKind::Register:
      case rtl::DestKind::ModeReg:
        reg_info_[s.name] = RegInfo{s.width};
        break;
      case rtl::DestKind::Memory:
        mem_info_[s.name] = MemInfo{s.width, s.cells};
        break;
      case rtl::DestKind::ProcOut:
        break;  // write-only ports are tracked in out_ports_
    }
  }
}

bool State::has_reg(std::string_view name) const {
  return reg_info_.find(name) != reg_info_.end();
}

int State::reg_width(std::string_view name) const {
  auto it = reg_info_.find(name);
  return it == reg_info_.end() ? 0 : it->second.width;
}

std::int64_t State::read_reg(const std::string& name) {
  auto it = regs_.find(name);
  if (it != regs_.end()) return it->second;
  std::int64_t v = initial_value(name, 0, reg_width(name));
  regs_.emplace(name, v);
  return v;
}

void State::write_reg(const std::string& name, std::int64_t v) {
  regs_[name] = canon(v, reg_width(name));
}

bool State::has_mem(std::string_view name) const {
  return mem_info_.find(name) != mem_info_.end();
}

int State::mem_width(std::string_view name) const {
  auto it = mem_info_.find(name);
  return it == mem_info_.end() ? 0 : it->second.width;
}

std::int64_t State::mem_cells(std::string_view name) const {
  auto it = mem_info_.find(name);
  return it == mem_info_.end() ? 0 : it->second.cells;
}

std::int64_t State::read_mem(const std::string& mem, std::int64_t addr) {
  auto it = mem_.find({mem, addr});
  if (it != mem_.end()) return it->second;
  std::int64_t v = initial_value(mem, addr, mem_width(mem));
  mem_.emplace(std::make_pair(mem, addr), v);
  return v;
}

void State::write_mem(const std::string& mem, std::int64_t addr,
                      std::int64_t v) {
  mem_[{mem, addr}] = canon(v, mem_width(mem));
  written_cells_.insert({mem, addr});
}

void State::set_in_port(const std::string& name, std::int64_t v) {
  in_ports_[name] = v;
}

std::int64_t State::read_in_port(const std::string& name, int width) const {
  auto it = in_ports_.find(name);
  return it == in_ports_.end() ? 0 : canon(it->second, width);
}

void State::write_out_port(const std::string& name, std::int64_t v,
                           int width) {
  out_ports_[name] = canon(v, width);
}

}  // namespace record::sim
