// Machine state over a target's storage resources.
//
// One State instance models the contents of every register, mode register
// and memory of a rtl::TemplateBase, plus primary input-port values and the
// last value driven onto each output port. The IR reference evaluator and
// the RT-level simulator both execute against a State, so their final
// states are directly comparable location by location.
//
// Unwritten locations read deterministic pseudo-random initial contents
// (sim::initial_value), identical across both executors — semantic bugs are
// not masked by all-zero starting state, and untouched locations can never
// diverge. Tests override individual locations before a run via write_reg /
// write_mem.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>

#include "rtl/template.h"

namespace record::sim {

class State {
 public:
  /// An empty state (no storage model); placeholder for result structs.
  State() = default;
  explicit State(const rtl::TemplateBase& base);

  // --- registers and mode registers ---------------------------------------

  [[nodiscard]] bool has_reg(std::string_view name) const;
  [[nodiscard]] int reg_width(std::string_view name) const;  // 0 = unknown
  /// Canonical current value; lazily initialised.
  [[nodiscard]] std::int64_t read_reg(const std::string& name);
  /// Truncates to the register's width.
  void write_reg(const std::string& name, std::int64_t v);

  // --- memories ------------------------------------------------------------

  [[nodiscard]] bool has_mem(std::string_view name) const;
  [[nodiscard]] int mem_width(std::string_view name) const;
  /// Addressable cells (the model's SIZE); 0 when unknown (e.g. a template
  /// base deserialised from a pre-v4 cache blob).
  [[nodiscard]] std::int64_t mem_cells(std::string_view name) const;
  [[nodiscard]] std::int64_t read_mem(const std::string& mem,
                                      std::int64_t addr);
  void write_mem(const std::string& mem, std::int64_t addr, std::int64_t v);
  /// Every (memory, cell) written so far — the semantic oracle compares
  /// these against the reference (minus the reserved spill-scratch window)
  /// so stray writes cannot hide in unobserved cells.
  [[nodiscard]] const std::set<std::pair<std::string, std::int64_t>>&
  written_cells() const {
    return written_cells_;
  }

  // --- primary ports --------------------------------------------------------

  /// Input ports read 0 unless set.
  void set_in_port(const std::string& name, std::int64_t v);
  [[nodiscard]] std::int64_t read_in_port(const std::string& name,
                                          int width) const;
  /// Records the last value driven onto an output port.
  void write_out_port(const std::string& name, std::int64_t v, int width);
  [[nodiscard]] const std::map<std::string, std::int64_t>& out_ports() const {
    return out_ports_;
  }

 private:
  struct RegInfo {
    int width = 0;
  };
  struct MemInfo {
    int width = 0;
    std::int64_t cells = 0;
  };

  std::map<std::string, RegInfo, std::less<>> reg_info_;
  std::map<std::string, MemInfo, std::less<>> mem_info_;
  std::map<std::string, std::int64_t> regs_;
  std::map<std::pair<std::string, std::int64_t>, std::int64_t> mem_;
  std::set<std::pair<std::string, std::int64_t>> written_cells_;
  std::map<std::string, std::int64_t> in_ports_;
  std::map<std::string, std::int64_t> out_ports_;
};

}  // namespace record::sim
