// IR reference evaluator: executes an ir::Program directly, over the
// target's storage cells, with modeled bit widths.
//
// This is the *semantic ground truth* of the fifth oracle path: what the
// kernel program means, independent of code selection, compaction and
// encoding. Execution follows the same width model the subject mapper uses
// to build parser subjects (select/subject_map.h):
//
//   * a variable/load reads its bound storage at the storage's width,
//   * an operator executes at its resolved width — multiplication widens
//     (w0 + w2), other operators take the max of their operands, w<N>()
//     casts pin the width — on the hardware unit the mapper would pick
//     (including the x2/x4 fixed-point promotion fallback when the natural
//     width has no unit, and the whole-statement promotion retry applied
//     when a statement only labels at accumulator precision),
//   * lo()/hi() are bit-field extractions over the operand's natural width,
//   * assignments and stores truncate to the destination storage's width.
//
// Operator value semantics are shared with the RT simulator (sim/value.h).
// Branches execute for real; because generated loop programs are
// intentionally non-terminating (a backward `goto`), execution stops after
// `max_taken_branches` taken branches — the simulator uses the same budget,
// so both sides observe the machine after exactly the same amount of work.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/record.h"
#include "ir/program.h"
#include "sim/state.h"

namespace record::sim {

enum class StopReason : std::uint8_t {
  kHalt,          // ran past the last statement / instruction word
  kBranchBudget,  // stopped right after the Nth taken branch
  kStepBudget     // max_steps exceeded without halting
};

[[nodiscard]] std::string_view to_string(StopReason r);

struct EvalOptions {
  int max_steps = 100000;
  int max_taken_branches = 4;
};

struct EvalResult {
  bool ok = false;
  /// True when the program uses an operator without executable semantics
  /// (an opaque custom unit): the run is not comparable, not failing.
  bool unsupported = false;
  std::string error;
  StopReason stop = StopReason::kHalt;
  std::int64_t steps = 0;
  std::int64_t taken_branches = 0;
  State state;
  /// Dynamic store locations written by the program, in execution order
  /// (with duplicates); the oracle compares exactly these cells plus the
  /// bound locations.
  std::vector<std::pair<std::string, std::int64_t>> stores;
};

/// Executes `prog` against the target's storage model. `initial` (optional)
/// seeds the pre-execution state; by default every location reads
/// sim::initial_value.
[[nodiscard]] EvalResult evaluate(const ir::Program& prog,
                                  const core::RetargetResult& target,
                                  const EvalOptions& options = {},
                                  const State* initial = nullptr);

}  // namespace record::sim
