#include "sim/value.h"

#include "util/strings.h"

namespace record::sim {

using util::fmt;

std::int64_t canon(std::int64_t v, int width) {
  if (width <= 0 || width >= 64) return v;
  std::uint64_t u = static_cast<std::uint64_t>(v) &
                    ((std::uint64_t{1} << width) - 1);
  std::uint64_t sign = std::uint64_t{1} << (width - 1);
  return static_cast<std::int64_t>((u ^ sign) - sign);
}

std::uint64_t bits_of(std::int64_t v, int width) {
  std::uint64_t u = static_cast<std::uint64_t>(v);
  if (width <= 0 || width >= 64) return u;
  return u & ((std::uint64_t{1} << width) - 1);
}

namespace {

/// Parses the canonical slice-operator name "bits<msb>_<lsb>"; false if
/// `custom` is not of that shape.
bool parse_slice(std::string_view custom, int& msb, int& lsb) {
  if (custom.rfind("bits", 0) != 0) return false;
  std::string_view rest = custom.substr(4);
  std::size_t sep = rest.find('_');
  if (sep == std::string_view::npos) return false;
  msb = 0;
  lsb = 0;
  for (char c : rest.substr(0, sep)) {
    if (c < '0' || c > '9') return false;
    msb = msb * 10 + (c - '0');
  }
  std::string_view low = rest.substr(sep + 1);
  if (low.empty()) return false;
  for (char c : low) {
    if (c < '0' || c > '9') return false;
    lsb = lsb * 10 + (c - '0');
  }
  return msb >= lsb;
}

/// Shift count as an unsigned quantity (counts are magnitudes, not signed
/// values, on every modeled shifter).
std::uint64_t shift_count(const Val& a) { return bits_of(a.v, a.width); }

}  // namespace

std::optional<Val> apply_op(const rtl::OpSig& sig, const std::vector<Val>& args,
                            std::string& why) {
  const int w = sig.width;
  auto need = [&](std::size_t n) {
    if (args.size() == n) return true;
    why = fmt("operator '{}' applied to {} operands (needs {})", sig.name(),
              args.size(), n);
    return false;
  };
  auto out = [&](std::int64_t v) { return Val{canon(v, w), w}; };

  if (sig.kind == hdl::OpKind::Custom) {
    int msb = 0, lsb = 0;
    if (parse_slice(sig.custom, msb, lsb)) {
      if (!need(1)) return std::nullopt;
      // Bit-field extraction over the operand's wires: bits beyond the
      // operand's width read 0 (sema rejects slices past a port's width,
      // so well-formed templates never depend on them).
      std::uint64_t u = bits_of(args[0].v, args[0].width);
      if (lsb >= 64) return out(0);
      return out(static_cast<std::int64_t>(u >> lsb));
    }
    why = fmt("custom operator '{}' has no executable semantics", sig.custom);
    return std::nullopt;
  }

  switch (sig.kind) {
    case hdl::OpKind::Add:
      if (!need(2)) return std::nullopt;
      return out(args[0].v + args[1].v);
    case hdl::OpKind::Sub:
      if (!need(2)) return std::nullopt;
      return out(args[0].v - args[1].v);
    case hdl::OpKind::Mul:
      if (!need(2)) return std::nullopt;
      // Wrapping product of the canonical (signed) operands; a widening
      // multiplier's full result is exact because operand widths sum to w.
      return out(static_cast<std::int64_t>(
          static_cast<std::uint64_t>(args[0].v) *
          static_cast<std::uint64_t>(args[1].v)));
    case hdl::OpKind::Div:
      if (!need(2)) return std::nullopt;
      if (args[1].v == 0) return out(0);
      // INT64_MIN / -1 would trap; it cannot arise from canonical operands
      // of width < 64, but guard anyway.
      if (args[0].v == INT64_MIN && args[1].v == -1) return out(INT64_MIN);
      return out(args[0].v / args[1].v);
    case hdl::OpKind::And:
      if (!need(2)) return std::nullopt;
      return out(args[0].v & args[1].v);
    case hdl::OpKind::Or:
      if (!need(2)) return std::nullopt;
      return out(args[0].v | args[1].v);
    case hdl::OpKind::Xor:
      if (!need(2)) return std::nullopt;
      return out(args[0].v ^ args[1].v);
    case hdl::OpKind::Shl: {
      if (!need(2)) return std::nullopt;
      std::uint64_t c = shift_count(args[1]);
      if (c >= 64) return out(0);
      return out(static_cast<std::int64_t>(
          static_cast<std::uint64_t>(args[0].v) << c));
    }
    case hdl::OpKind::Shr: {
      // Logical shift over the operator-width pattern (zeros shift in).
      if (!need(2)) return std::nullopt;
      std::uint64_t c = shift_count(args[1]);
      if (c >= 64) return out(0);
      return out(static_cast<std::int64_t>(bits_of(args[0].v, w) >> c));
    }
    case hdl::OpKind::Neg:
      if (!need(1)) return std::nullopt;
      return out(-args[0].v);
    case hdl::OpKind::Not:
      if (!need(1)) return std::nullopt;
      return out(~args[0].v);
    case hdl::OpKind::Sxt:
      // The operand is already canonical (sign-extended), so extension to a
      // wider width is the identity on the carried value.
      if (!need(1)) return std::nullopt;
      return out(args[0].v);
    case hdl::OpKind::Zxt:
      if (!need(1)) return std::nullopt;
      return out(static_cast<std::int64_t>(bits_of(args[0].v, args[0].width)));
    case hdl::OpKind::Custom:
      break;  // handled above
  }
  why = fmt("operator '{}' has no executable semantics", sig.name());
  return std::nullopt;
}

std::int64_t initial_value(std::string_view storage, std::int64_t cell,
                           int width) {
  // FNV-1a over the name, then one splitmix64 round mixing in the cell.
  std::uint64_t h = 1469598103934665603ull;
  for (char c : storage) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  std::uint64_t z = h + static_cast<std::uint64_t>(cell) * 0x9e3779b97f4a7c15ull +
                    0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return canon(static_cast<std::int64_t>(z), width);
}

}  // namespace record::sim
