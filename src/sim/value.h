// Executable operator semantics shared by the IR reference evaluator and the
// RT-level instruction-set simulator (sim/eval.h, sim/machine.h).
//
// Both executors must compute bit-identical results, so the value model is
// defined once, here:
//
//   * A value of width w is the signed two's-complement reading of its low
//     w bits; values are carried canonically sign-extended in an int64
//     (width 0 means "exact": unconstrained integers such as IR constants).
//   * Every operator application truncates its result to the operator's
//     result width (the hardware unit's output wires).
//   * Narrow operands entering a wider operator contribute their canonical
//     (sign-extended) value; explicit ZXT/SXT nodes in RT trees override
//     this, exactly as the modeled extender units do.
//   * Shr is a logical shift over the operator-width bit pattern; Shl/Shr
//     counts are read as unsigned; Div is signed C++ truncating division
//     with x/0 = 0.
//
// These conventions match the ALU semantics of the built-in models (which
// sign-extend memory and immediate operands into wider datapaths via SXT
// units and zero-extend via ZXT units) and the testgen-generated machines
// (same-width ALUs behind ZXT immediate extenders).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rtl/template.h"

namespace record::sim {

/// A width-qualified value: `v` is canonical (sign-extended low `width`
/// bits); width 0 carries an exact integer.
struct Val {
  std::int64_t v = 0;
  int width = 0;
};

/// Sign-extends the low `width` bits of `v`; width <= 0 or >= 64 returns `v`.
[[nodiscard]] std::int64_t canon(std::int64_t v, int width);

/// The low `width` bits of `v` as an unsigned pattern; width <= 0 or >= 64
/// returns the full 64-bit pattern.
[[nodiscard]] std::uint64_t bits_of(std::int64_t v, int width);

/// Applies one hardware operator to its operand values. Returns nullopt for
/// operators without modeled executable semantics (opaque custom units such
/// as RND), with `why` naming the problem; arity mismatches also fail here.
/// Canonical slice operators ("bits<msb>_<lsb>", rtl::slice_op_sig) are
/// executed as bit-field extractions.
[[nodiscard]] std::optional<Val> apply_op(const rtl::OpSig& sig,
                                          const std::vector<Val>& args,
                                          std::string& why);

/// Deterministic initial contents of a storage cell: a splitmix64 hash of
/// (storage name, cell index) truncated to `width` bits and returned
/// canonically. Registers use cell 0. Both executors (and tests) derive the
/// same pre-execution machine state from this function, so untouched
/// locations never diverge.
[[nodiscard]] std::int64_t initial_value(std::string_view storage,
                                         std::int64_t cell, int width);

}  // namespace record::sim
