#include "sim/check.h"

#include <set>
#include <sstream>

#include "sim/value.h"
#include "util/strings.h"

namespace record::sim {

using util::fmt;

namespace {

std::string hex(std::int64_t v, int width) {
  std::ostringstream os;
  os << "0x" << std::hex << bits_of(v, width);
  return os.str();
}

}  // namespace

std::string_view to_string(CheckStatus s) {
  switch (s) {
    case CheckStatus::kAgree:
      return "agree";
    case CheckStatus::kDiverged:
      return "diverged";
    case CheckStatus::kDecodeReject:
      return "decode-reject";
    case CheckStatus::kSkipped:
      return "skipped";
  }
  return "?";
}

CheckReport check_semantics(const ir::Program& prog,
                            const core::CompileResult& result,
                            const core::RetargetResult& target,
                            const CheckOptions& options) {
  CheckReport report;

  State initial(*target.base);
  for (const auto& [name, v] : options.init_regs) initial.write_reg(name, v);
  for (const auto& [mem, addr, v] : options.init_mem)
    initial.write_mem(mem, addr, v);

  EvalOptions eopts;
  eopts.max_steps = options.max_steps;
  eopts.max_taken_branches = options.max_taken_branches;
  report.eval = evaluate(prog, target, eopts, &initial);
  if (!report.eval.ok) {
    // The reference cannot execute the program (opaque custom operator, an
    // out-of-model address, ...): nothing to compare against.
    report.status = CheckStatus::kSkipped;
    report.detail = "reference evaluator: " + report.eval.error;
    return report;
  }

  Machine machine(*target.base);
  MachineOptions mopts;
  mopts.max_steps = options.max_steps;
  mopts.max_taken_branches = options.max_taken_branches;
  mopts.in_ports = options.in_ports;
  report.sim = machine.run(result.encoded.assembly, mopts, &initial);
  if (!report.sim.ok) {
    report.status = report.sim.unsupported ? CheckStatus::kSkipped
                                           : CheckStatus::kDecodeReject;
    report.detail = "simulator: " + report.sim.error;
    return report;
  }

  // --- control flow must have stopped at the same program point ------------
  if (report.eval.stop != report.sim.stop ||
      report.eval.taken_branches != report.sim.taken_branches) {
    report.status = CheckStatus::kDiverged;
    report.detail = fmt(
        "control flow diverged: reference stopped by {} after {} taken "
        "branches, simulator by {} after {}",
        to_string(report.eval.stop), report.eval.taken_branches,
        to_string(report.sim.stop), report.sim.taken_branches);
    return report;
  }

  // --- compare every observable location -----------------------------------
  auto diverge = [&](const std::string& what, std::int64_t want,
                     std::int64_t got, int width) {
    report.status = CheckStatus::kDiverged;
    report.detail = fmt("{}: simulator computed {} ({}) but the reference "
                        "evaluator computed {} ({})",
                        what, got, hex(got, width), want, hex(want, width));
  };

  for (const auto& [var, binding] : prog.bindings()) {
    if (binding.kind == ir::Binding::Kind::Register) {
      std::int64_t want = report.eval.state.read_reg(binding.storage);
      std::int64_t got = report.sim.state.read_reg(binding.storage);
      if (want != got) {
        diverge(fmt("register '{}' (variable '{}')", binding.storage, var),
                want, got, report.sim.state.reg_width(binding.storage));
        return report;
      }
    } else {
      std::int64_t want =
          report.eval.state.read_mem(binding.storage, binding.cell);
      std::int64_t got =
          report.sim.state.read_mem(binding.storage, binding.cell);
      if (want != got) {
        diverge(fmt("{}[{}] (variable '{}')", binding.storage, binding.cell,
                    var),
                want, got, report.sim.state.mem_width(binding.storage));
        return report;
      }
    }
  }

  std::set<std::pair<std::string, std::int64_t>> cells(
      report.eval.stores.begin(), report.eval.stores.end());
  for (const auto& [mem, addr] : cells) {
    std::int64_t want = report.eval.state.read_mem(mem, addr);
    std::int64_t got = report.sim.state.read_mem(mem, addr);
    if (want != got) {
      diverge(fmt("stored cell {}[{}]", mem, addr), want, got,
              report.sim.state.mem_width(mem));
      return report;
    }
  }

  // Stray-write sweep: every cell the emitted code wrote — outside the
  // compiler's reserved spill-scratch window — must also match the
  // reference, which holds the initial value for cells the program never
  // touches. Silent corruption of unobserved data cells cannot pass.
  std::string scratch = options.scratch_memory;
  if (scratch.empty())
    for (const rtl::StorageInfo& s : target.base->storage)
      if (s.kind == rtl::DestKind::Memory) {
        scratch = s.name;
        break;
      }
  for (const auto& [mem, addr] : report.sim.state.written_cells()) {
    if (mem == scratch && addr >= options.scratch_base &&
        addr < options.scratch_base + options.scratch_slots)
      continue;
    std::int64_t want = report.eval.state.read_mem(mem, addr);
    std::int64_t got = report.sim.state.read_mem(mem, addr);
    if (want != got) {
      diverge(fmt("cell {}[{}] (written by the emitted code only)", mem,
                  addr),
              want, got, report.sim.state.mem_width(mem));
      return report;
    }
  }

  report.status = CheckStatus::kAgree;
  return report;
}

}  // namespace record::sim
