// Section 3.2 claim: tree-parser throughput — now per engine.
//
// "The computation time is approximately linear in the number of ET nodes,
//  with a constant factor determined by the underlying grammar. In
//  practice, several hundred RT templates per CPU second are emitted on the
//  average."
//
// For each built-in model this harness parses synthetic expression trees of
// growing size with BOTH labelling engines — the dynamic-programming
// interpreter and the table-driven burstab engine (tables warmed through the
// persistent TargetCache, as a long-running selection service would run) —
// and reports nodes/second and selected RTs/second side by side. Per-node
// time should stay roughly constant as trees grow (linearity); the table
// engine's constant is grammar-independent, so its advantage grows with
// grammar size.
//
// Results are also written as machine-readable JSON to
// BENCH_selection_throughput.json so the performance trajectory of the
// repository is recorded across commits.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "burstab/cache.h"
#include "core/compiler.h"
#include "core/record.h"
#include "models/workload.h"
#include "util/strings.h"
#include "util/timer.h"

using namespace record;

namespace {

using models::chain_program;
using models::kChainShapes;

struct Row {
  std::string model;
  std::string engine;
  int terms = 0;
  std::size_t nodes = 0;
  std::size_t rts = 0;
  double ms = 0;
  double us_per_node = 0;
  double nodes_per_sec = 0;
  double rts_per_sec = 0;
};

void emit_json(const std::vector<Row>& rows, double warm_load_ms,
               const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"selection_throughput\",\n";
  out << "  \"warm_cache_load_ms\": " << warm_load_ms << ",\n";
  out << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"model\": \"" << r.model << "\", \"engine\": \""
        << r.engine << "\", \"terms\": " << r.terms
        << ", \"nodes\": " << r.nodes << ", \"rts\": " << r.rts
        << ", \"ms\": " << r.ms << ", \"us_per_node\": " << r.us_per_node
        << ", \"nodes_per_sec\": " << r.nodes_per_sec
        << ", \"rts_per_sec\": " << r.rts_per_sec << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  std::printf("Selection throughput per engine (tree parsing, per model)\n");
  std::printf("%-11s %-12s %6s | %8s %8s | %12s %12s %14s\n", "model",
              "engine", "terms", "nodes", "RTs", "time[ms]", "us/node",
              "RTs/sec");

  std::vector<Row> rows;
  double warm_load_ms_total = 0;

  for (const models::ChainShape& s : kChainShapes) {
    util::DiagnosticSink diags;
    core::RetargetOptions options;
    options.use_target_cache = true;  // first run cold-stores, reruns warm
    util::Timer load_timer;
    auto target = core::Record::retarget_model(s.model, options, diags);
    double load_ms = load_timer.milliseconds();
    if (!target) {
      std::printf("%-11s retarget failed: %s\n", s.model,
                  diags.first_error().c_str());
      return 1;
    }
    if (target->cache_hit) warm_load_ms_total += load_ms;
    std::printf("%-11s retarget %s in %.3f ms (tables: %zu states)\n",
                s.model, target->cache_hit ? "warm-loaded" : "cold-built",
                load_ms, target->tables ? target->tables->stats().states : 0);

    for (int k : {8, 16, 32, 64}) {
      ir::Program prog = chain_program(s, k);
      for (select::Engine engine :
           {select::Engine::kInterpreter, select::Engine::kTables}) {
        const burstab::TargetTables* tables =
            engine == select::Engine::kTables ? target->tables.get()
                                              : nullptr;
        // Warm-up pass (also grows dynamic table entries), then timed reps.
        {
          util::DiagnosticSink d;
          select::CodeSelector sel(*target->base, target->tree_grammar, d,
                                   tables);
          (void)sel.select(prog);
        }
        util::Timer timer;
        constexpr int kReps = 20;
        std::size_t rts = 0, nodes = 0;
        for (int rep = 0; rep < kReps; ++rep) {
          util::DiagnosticSink d;
          select::CodeSelector sel(*target->base, target->tree_grammar, d,
                                   tables);
          auto result = sel.select(prog);
          if (!result) {
            std::printf("%-11s %6d | selection failed: %s\n", s.model, k,
                        d.first_error().c_str());
            return 1;
          }
          rts = result->total_rts;
          nodes = sel.stats().nodes_labelled;
        }
        double ms = timer.milliseconds() / kReps;
        Row row;
        row.model = s.model;
        row.engine = std::string(select::to_string(engine));
        row.terms = k;
        row.nodes = nodes;
        row.rts = rts;
        row.ms = ms;
        row.us_per_node = ms * 1000.0 / double(nodes);
        row.nodes_per_sec = double(nodes) / (ms / 1000.0);
        row.rts_per_sec = double(rts) / (ms / 1000.0);
        rows.push_back(row);
        std::printf("%-11s %-12s %6d | %8zu %8zu | %12.3f %12.3f %14.0f\n",
                    s.model, row.engine.c_str(), k, nodes, rts, ms,
                    row.us_per_node, row.rts_per_sec);
      }
    }
  }

  // Side-by-side verdict: table speedup per model at the largest size.
  std::printf("\nspeedup (tables vs interpreter, 64-term chains):\n");
  for (const models::ChainShape& s : kChainShapes) {
    double interp = 0, tab = 0;
    for (const Row& r : rows) {
      if (r.model != s.model || r.terms != 64) continue;
      (r.engine == "tables" ? tab : interp) = r.nodes_per_sec;
    }
    if (interp > 0 && tab > 0)
      std::printf("  %-11s %.2fx (%.0f -> %.0f nodes/sec)\n", s.model,
                  tab / interp, interp, tab);
  }

  emit_json(rows, warm_load_ms_total, "BENCH_selection_throughput.json");
  std::printf(
      "\nwrote BENCH_selection_throughput.json; expected: us/node roughly "
      "constant per model (linear labelling); table engine at or above the "
      "interpreter, with the gap widening on large grammars (ref)\n");
  return 0;
}
