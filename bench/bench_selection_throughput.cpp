// Section 3.2 claim: tree-parser throughput.
//
// "The computation time is approximately linear in the number of ET nodes,
//  with a constant factor determined by the underlying grammar. In
//  practice, several hundred RT templates per CPU second are emitted on the
//  average."
//
// For each built-in model this harness parses synthetic expression trees of
// growing size and reports nodes/second and selected RTs/second. The
// per-node time should stay roughly constant as trees grow (linearity), and
// the absolute rates land far above the paper's 1996 figures.
#include <cstdio>
#include <string>

#include "core/compiler.h"
#include "core/record.h"
#include "ir/builder.h"
#include "util/timer.h"

using namespace record;

namespace {

struct Shape {
  const char* model;
  const char* acc;   // accumulator register
  const char* mem1;  // first operand memory
  const char* mem2;  // second operand memory ("" = plain additive chain)
};

constexpr Shape kShapes[] = {
    {"demo", "R0", "mem", ""},
    {"ref", "R0", "dmem", ""},
    {"manocpu", "AC", "mem", ""},
    {"tanenbaum", "AC", "mem", ""},
    {"bass_boost", "A", "sram", "crom"},
    {"tms320c25", "ACC", "ram", "ram"},
};

/// acc = t0 + t1 + ... + t_{k-1}; terms are loads or products.
ir::Program chain_program(const Shape& s, int k) {
  ir::ProgramBuilder b(std::string(s.model) + "_chain");
  b.reg("acc", s.acc);
  auto term = [&](int i) -> ir::ExprPtr {
    if (s.mem2[0] == '\0') {
      std::string v = "m" + std::to_string(i);
      b.cell(v, s.mem1, i % 16);
      return ir::e_var(v);
    }
    std::string u = "u" + std::to_string(i), v = "v" + std::to_string(i);
    b.cell(u, s.mem1, i % 16);
    b.cell(v, s.mem2, (i + 1) % 16);
    return ir::e_mul(ir::e_var(u), ir::e_var(v));
  };
  ir::ExprPtr sum = term(0);
  for (int i = 1; i < k; ++i) sum = ir::e_add(std::move(sum), term(i));
  b.let("acc", std::move(sum));
  return b.take();
}

}  // namespace

int main() {
  std::printf("Selection throughput (tree parsing, per model)\n");
  std::printf("%-11s %6s | %8s %8s | %12s %12s %14s\n", "model", "terms",
              "nodes", "RTs", "time[ms]", "us/node", "RTs/sec");

  for (const Shape& s : kShapes) {
    util::DiagnosticSink diags;
    auto target =
        core::Record::retarget_model(s.model, core::RetargetOptions{}, diags);
    if (!target) {
      std::printf("%-11s retarget failed: %s\n", s.model,
                  diags.first_error().c_str());
      return 1;
    }
    for (int k : {8, 16, 32, 64}) {
      ir::Program prog = chain_program(s, k);
      select::CodeSelector selector(*target->base, target->tree_grammar,
                                    diags);
      // Warm-up + timed repetitions for stable numbers.
      util::Timer timer;
      constexpr int kReps = 20;
      std::size_t rts = 0, nodes = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        util::DiagnosticSink d;
        select::CodeSelector sel(*target->base, target->tree_grammar, d);
        auto result = sel.select(prog);
        if (!result) {
          std::printf("%-11s %6d | selection failed: %s\n", s.model, k,
                      d.first_error().c_str());
          return 1;
        }
        rts = result->total_rts;
        nodes = sel.stats().nodes_labelled;
      }
      double ms = timer.milliseconds() / kReps;
      std::printf("%-11s %6d | %8zu %8zu | %12.3f %12.3f %14.0f\n", s.model,
                  k, nodes, rts, ms, ms * 1000.0 / double(nodes),
                  double(rts) / (ms / 1000.0));
    }
  }
  std::printf(
      "\nexpected: us/node roughly constant per model (linear labelling); "
      "RTs/sec far above the paper's \"several hundred per CPU second\"\n");
  return 0;
}
