// Ablation (paper section 2): BDD-based pruning of invalid RT templates.
//
// "The extracted execution conditions ... [reveal] unsatisfiable execution
//  conditions (e.g. due to instruction encoding conflicts or bus
//  contentions), resulting in invalid RT templates, which are discarded
//  from the template base."
//
// With pruning disabled, every enumeration fork survives: the template base
// and the constructed grammar inflate with operations the instruction
// encoding can never trigger. This harness reports base sizes and the
// number of forks the satisfiability checks kill per model.
#include <cstdio>

#include "core/record.h"
#include "models/models.h"

using namespace record;

int main() {
  std::printf("BDD pruning ablation\n");
  std::printf("%-11s | %10s %12s | %12s %14s\n", "processor", "pruned#T",
              "unpruned#T", "forks killed", "bus contention");
  for (const models::ModelInfo& info : models::builtin_models()) {
    util::DiagnosticSink d1, d2;
    core::RetargetOptions pruned;
    core::RetargetOptions unpruned;
    unpruned.extract.prune_unsat = false;

    auto with = core::Record::retarget_model(info.name, pruned, d1);
    auto without = core::Record::retarget_model(info.name, unpruned, d2);
    if (!with || !without) {
      std::printf("%-11s retarget failed\n", std::string(info.name).c_str());
      return 1;
    }
    std::printf("%-11s | %10zu %12zu | %12zu %14zu\n",
                std::string(info.name).c_str(), with->template_count(),
                without->template_count(),
                with->extract_stats.route_stats.unsat_pruned,
                with->extract_stats.route_stats.bus_contention_pruned);
  }
  std::printf(
      "\nexpected: unpruned bases strictly larger wherever the encoding "
      "constrains unit combinations (encoded formats, shared buses)\n");
  return 0;
}
