// Figure 2 reproduction: relative code size (hand-written = 100%) on the
// TMS320C25 model for the ten DSPStone kernels.
//
// Left bar of each pair in the paper = TI's C compiler (here: the
// vendor-style baseline, see DESIGN.md substitutions); right bar = RECORD
// (tree-parsing selection + spill repair + BDD-guarded compaction).
// The paper's shape: RECORD shows low overhead versus hand-written code and
// outperforms the target-specific compiler, whose bars reach 150-700%.
#include <cstdio>
#include <string>

#include "baseline/baseline.h"
#include "core/compiler.h"
#include "core/record.h"
#include "dspstone/handcode.h"
#include "dspstone/kernels.h"

using namespace record;

int main() {
  util::DiagnosticSink diags;

  core::RetargetOptions full;
  auto target = core::Record::retarget_model("tms320c25", full, diags);
  if (!target) {
    std::printf("retargeting failed:\n%s\n", diags.str().c_str());
    return 1;
  }

  core::RetargetOptions plain_opts;
  plain_opts.commutativity = false;
  plain_opts.standard_rewrites = false;
  util::DiagnosticSink plain_diags;
  auto plain =
      core::Record::retarget_model("tms320c25", plain_opts, plain_diags);
  if (!plain) {
    std::printf("plain retargeting failed\n");
    return 1;
  }

  std::printf(
      "Figure 2: relative code size on TMS320C25 (hand-written = 100%%)\n");
  std::printf("%-18s | %5s | %7s %7s | %9s %9s\n", "kernel", "hand",
              "vendor", "record", "vendor%", "record%");
  std::printf("%.78s\n",
              "-----------------------------------------------------------"
              "--------------------");

  core::Compiler compiler(*target);
  bool ok = true;
  for (const std::string& name : dspstone::kernel_names()) {
    ir::Program prog = dspstone::kernel(name);
    int hand = dspstone::hand_code_size(name);

    util::DiagnosticSink kd;
    auto rec = compiler.compile(prog, core::CompileOptions{}, kd);

    util::DiagnosticSink bd;
    auto base = baseline::compile_baseline(*plain, prog,
                                           baseline::BaselineOptions{}, bd);
    if (!rec || !base || hand <= 0) {
      std::printf("%-18s | FAILED (%s)\n", name.c_str(),
                  (!rec ? kd.first_error() : bd.first_error()).c_str());
      ok = false;
      continue;
    }
    double vendor_pct = 100.0 * static_cast<double>(base->code_size()) /
                        static_cast<double>(hand);
    double record_pct = 100.0 * static_cast<double>(rec->code_size()) /
                        static_cast<double>(hand);
    std::printf("%-18s | %5d | %7zu %7zu | %8.1f%% %8.1f%%\n", name.c_str(),
                hand, base->code_size(), rec->code_size(), vendor_pct,
                record_pct);
  }

  std::printf(
      "\nexpected shape: record%% near 100, vendor%% well above record%% "
      "for every kernel\n");
  return ok ? 0 : 1;
}
