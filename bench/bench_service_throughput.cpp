// Compile-service throughput: jobs/sec over a warm-registry mixed-model
// workload as the worker pool grows (1/2/4/8 threads).
//
// Every job is an independent Compiler run (selection + spills + compaction
// + encoding) against one of the six built-in targets, resolved through the
// shared TargetRegistry. The registry is pre-warmed with retarget-only jobs
// so the measurement isolates *compile* concurrency — the production steady
// state of a long-running service — rather than one-time retargeting cost.
// Perfect scaling is jobs/sec proportional to workers up to the machine's
// core count (the hardware_concurrency figure is reported so single-core CI
// readings are interpretable).
//
// Results are also written as machine-readable JSON to
// BENCH_service_throughput.json, like bench_selection_throughput.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "models/workload.h"
#include "service/service.h"
#include "util/timer.h"

using namespace record;

namespace {

using models::chain_program;
using models::kChainShapes;

struct Row {
  std::size_t workers = 0;
  std::size_t jobs = 0;
  double seconds = 0;
  double jobs_per_sec = 0;
  double speedup = 0;  // vs the 1-worker row
  double avg_queue_ms = 0;
};

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("Compile-service throughput, warm-registry mixed-model "
              "workload (hardware_concurrency=%u)\n", hw);
  std::printf("%8s %8s %10s %12s %10s %12s\n", "workers", "jobs", "time[s]",
              "jobs/sec", "speedup", "avg queue ms");

  // The shared workload: 6 models x 4 sizes x 8 reps = 192 jobs. Program
  // trees are built once and shared (jobs only read them).
  std::vector<
      std::pair<const models::ChainShape*, std::shared_ptr<const ir::Program>>>
      workload;
  for (const models::ChainShape& s : kChainShapes)
    for (int k : {8, 16, 32, 64})
      workload.emplace_back(
          &s, std::make_shared<const ir::Program>(chain_program(s, k)));
  constexpr int kReps = 8;

  std::vector<Row> rows;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    service::CompileService::Options opts;
    opts.workers = workers;
    opts.queue_capacity = 256;
    opts.registry.capacity = 16;
    opts.registry.retarget.use_target_cache = true;  // cold start from disk
    service::CompileService svc(opts);

    // Warm the registry: one retarget-only job per model (single-flighted;
    // served from the persistent cache when this bench ran before).
    {
      std::vector<service::CompileJob> warm;
      for (const models::ChainShape& s : kChainShapes) {
        service::CompileJob job;
        job.model = s.model;
        warm.push_back(std::move(job));
      }
      for (service::JobResult& r : svc.compile_batch(std::move(warm))) {
        if (!r.ok) {
          std::printf("warm-up retarget failed: %s\n", r.error.c_str());
          return 1;
        }
      }
    }

    util::Timer timer;
    std::vector<std::future<service::JobResult>> futures;
    futures.reserve(workload.size() * kReps);
    for (int rep = 0; rep < kReps; ++rep) {
      for (const auto& [shape, program] : workload) {
        service::CompileJob job;
        job.model = shape->model;
        job.program = program;
        job.want_listing = false;  // measure compilation, not formatting
        futures.push_back(svc.submit(std::move(job)));
      }
    }
    std::size_t failed = 0;
    for (auto& f : futures) {
      service::JobResult r = f.get();
      if (!r.ok) {
        if (failed++ == 0)
          std::printf("job failed: %s\n", r.error.c_str());
      }
    }
    double seconds = timer.seconds();
    if (failed) {
      std::printf("%zu jobs failed\n", failed);
      return 1;
    }

    Row row;
    row.workers = workers;
    row.jobs = futures.size();
    row.seconds = seconds;
    row.jobs_per_sec = double(row.jobs) / seconds;
    service::ServiceStats stats = svc.stats();
    row.avg_queue_ms =
        stats.completed ? stats.total_queue_ms / double(stats.completed) : 0;
    row.speedup =
        rows.empty() ? 1.0 : row.jobs_per_sec / rows.front().jobs_per_sec;
    rows.push_back(row);
    std::printf("%8zu %8zu %10.3f %12.1f %9.2fx %12.3f\n", row.workers,
                row.jobs, row.seconds, row.jobs_per_sec, row.speedup,
                row.avg_queue_ms);
  }

  std::ofstream out("BENCH_service_throughput.json");
  out << "{\n  \"benchmark\": \"service_throughput\",\n";
  out << "  \"hardware_concurrency\": " << hw << ",\n";
  out << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"workers\": " << r.workers << ", \"jobs\": " << r.jobs
        << ", \"seconds\": " << r.seconds
        << ", \"jobs_per_sec\": " << r.jobs_per_sec
        << ", \"speedup_vs_1\": " << r.speedup
        << ", \"avg_queue_ms\": " << r.avg_queue_ms << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf(
      "\nwrote BENCH_service_throughput.json; expected: jobs/sec scaling "
      "with workers up to hardware_concurrency (>2x at 4 workers on a >=4 "
      "core machine), flat on a single core\n");
  return 0;
}
