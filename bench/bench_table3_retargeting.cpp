// Table 3 reproduction: RT-template count and retargeting time for the six
// target processors.
//
// Paper (DATE 1997, SPARC-20 CPU seconds):
//   demo 439 / 356s, ref 1703 / 84s, manocpu 207 / 6.3s,
//   tanenbaum 232 / 11.7s, bass_boost 89 / 3.7s, TMS320C25 356 / 165s.
//
// This harness runs the complete retargeting pipeline — HDL frontend, ISE,
// template-base extension, grammar construction, parser generation and
// parser compilation by the host C compiler — and prints the same rows.
// Absolute times are ~4 orders of magnitude below the 1996 numbers; the
// meaningful comparison is the template-count ordering and the fact that
// whole-processor retargeting completes in interactive time.
#include <cstdio>

#include "core/record.h"
#include "models/models.h"
#include "util/timer.h"

using namespace record;

int main() {
  std::printf("Table 3: retargeting time and extended RT template base\n");
  std::printf("%-11s | %8s %8s | %10s %8s %8s %8s %9s %9s | %10s\n",
              "processor", "paper#T", "ours#T", "total[s]", "hdl[s]",
              "ise[s]", "ext[s]", "gram[s]", "pgen[s]", "cc[s]");
  std::printf("%.120s\n",
              "-----------------------------------------------------------"
              "-----------------------------------------------------------");

  for (const models::ModelInfo& info : models::builtin_models()) {
    util::DiagnosticSink diags;
    core::RetargetOptions options;
    options.emit_c_parser = true;
    options.compile_c_parser = true;
    util::Timer total;
    auto result =
        core::Record::retarget_model(info.name, options, diags);
    double total_s = total.seconds();
    if (!result) {
      std::printf("%-11s | RETARGETING FAILED:\n%s\n",
                  std::string(info.name).c_str(), diags.str().c_str());
      return 1;
    }
    std::printf(
        "%-11s | %8d %8zu | %10.3f %8.3f %8.3f %8.3f %9.3f %9.3f | %10.3f\n",
        result->processor.c_str(), info.paper_template_count,
        result->template_count(), total_s, result->times.get("hdl"),
        result->times.get("ise"), result->times.get("extend"),
        result->times.get("grammar"), result->times.get("parsergen"),
        result->times.get("parsercc"));
  }

  std::printf(
      "\npaper ordering: ref > demo > tms320c25 > tanenbaum > manocpu > "
      "bass_boost\n");
  return 0;
}
