// Table 3 reproduction: RT-template count and retargeting time for the six
// target processors.
//
// Paper (DATE 1997, SPARC-20 CPU seconds):
//   demo 439 / 356s, ref 1703 / 84s, manocpu 207 / 6.3s,
//   tanenbaum 232 / 11.7s, bass_boost 89 / 3.7s, TMS320C25 356 / 165s.
//
// This harness runs the complete retargeting pipeline — HDL frontend, ISE,
// template-base extension, grammar construction, BURS state-table
// compilation, parser generation and parser compilation by the host C
// compiler — and prints the same rows. Absolute times are ~4 orders of
// magnitude below the 1996 numbers; the meaningful comparison is the
// template-count ordering and the fact that whole-processor retargeting
// completes in interactive time.
//
// A second pass re-retargets every model through the persistent TargetCache
// (burstab::TargetCache): the "warm[s]" column is the cost of serving an
// unchanged model from the cache — the amortised retargeting price a
// long-running selection service pays.
#include <cstdio>
#include <filesystem>

#include "burstab/cache.h"
#include "core/record.h"
#include "models/models.h"
#include "util/timer.h"

using namespace record;

int main() {
  std::printf(
      "Table 3: retargeting time and extended RT template base\n");
  std::printf(
      "%-11s | %8s %8s | %10s %8s %8s %8s %9s %7s %9s %9s | %10s | %9s\n",
      "processor", "paper#T", "ours#T", "total[s]", "hdl[s]", "ise[s]",
      "ext[s]", "gram[s]", "tab[s]", "pgen[s]", "cc[s]", "warm[s]", "speedup");
  std::printf("%.140s\n",
              "-----------------------------------------------------------"
              "-----------------------------------------------------------"
              "--------------------");

  std::string cache_dir =
      (std::filesystem::temp_directory_path() / "record-bench-cache")
          .string();
  std::filesystem::remove_all(cache_dir);

  for (const models::ModelInfo& info : models::builtin_models()) {
    util::DiagnosticSink diags;
    core::RetargetOptions options;
    options.emit_c_parser = true;
    options.compile_c_parser = true;
    options.use_target_cache = true;
    options.cache_dir = cache_dir;
    util::Timer total;
    auto result =
        core::Record::retarget_model(info.name, options, diags);
    double total_s = total.seconds();
    if (!result) {
      std::printf("%-11s | RETARGETING FAILED:\n%s\n",
                  std::string(info.name).c_str(), diags.str().c_str());
      return 1;
    }

    // Warm pass: same model, same options, served from the cache. Parser
    // emission/compilation is excluded so the column isolates the pipeline.
    core::RetargetOptions warm_options = options;
    warm_options.emit_c_parser = false;
    warm_options.compile_c_parser = false;
    util::Timer warm_timer;
    auto warm =
        core::Record::retarget_model(info.name, warm_options, diags);
    double warm_s = warm_timer.seconds();
    bool warm_hit = warm && warm->cache_hit;
    // Baseline: the cold pipeline a non-caching run pays — exclude parser
    // emission and the cache store itself.
    double cold_pipeline_s = total_s - result->times.get("parsergen") -
                             result->times.get("parsercc") -
                             result->times.get("cachestore");

    std::printf(
        "%-11s | %8d %8zu | %10.3f %8.3f %8.3f %8.3f %9.3f %7.3f %9.3f "
        "%9.3f | %10.4f | %8.1fx\n",
        result->processor.c_str(), info.paper_template_count,
        result->template_count(), total_s, result->times.get("hdl"),
        result->times.get("ise"), result->times.get("extend"),
        result->times.get("grammar"), result->times.get("tables"),
        result->times.get("parsergen"), result->times.get("parsercc"),
        warm_hit ? warm_s : -1.0,
        warm_hit && warm_s > 0 ? cold_pipeline_s / warm_s : 0.0);
  }

  std::printf(
      "\npaper ordering: ref > demo > tms320c25 > tanenbaum > manocpu > "
      "bass_boost\nwarm[s]: cache-served retarget (pipeline only); speedup "
      "vs the cold pipeline\n");
  std::filesystem::remove_all(cache_dir);
  return 0;
}
