// Ablation (paper section 3.2 / [17]): contribution of code compaction.
//
// "Exploitation of potential parallelism is performed in a subsequent code
//  compaction phase."
//
// The DSPStone kernels are compiled with compaction enabled (RTs packed
// into horizontal words under BDD encoding compatibility) and disabled (one
// RT per word). The delta is exactly the instruction-level parallelism the
// encoding admits — on the TMS320C25 model, the MPYA multiply-accumulate
// fusions and parallel address-register updates.
#include <cstdio>
#include <string>

#include "core/compiler.h"
#include "core/record.h"
#include "dspstone/kernels.h"

using namespace record;

int main() {
  util::DiagnosticSink diags;
  auto target = core::Record::retarget_model("tms320c25",
                                             core::RetargetOptions{}, diags);
  if (!target) {
    std::printf("retargeting failed:\n%s\n", diags.str().c_str());
    return 1;
  }
  core::Compiler compiler(*target);

  std::printf("Compaction ablation on tms320c25 (code size in words)\n");
  std::printf("%-20s | %9s | %11s | %7s\n", "kernel", "compacted",
              "uncompacted", "saved");
  std::size_t total_on = 0, total_off = 0;
  for (const std::string& name : dspstone::kernel_names()) {
    ir::Program prog = dspstone::kernel(name);

    util::DiagnosticSink d1, d2;
    core::CompileOptions on;
    core::CompileOptions off;
    off.compact.enabled = false;
    auto with = compiler.compile(prog, on, d1);
    auto without = compiler.compile(dspstone::kernel(name), off, d2);
    if (!with || !without) {
      std::printf("%-20s | compile failed\n", name.c_str());
      return 1;
    }
    total_on += with->code_size();
    total_off += without->code_size();
    std::printf("%-20s | %9zu | %11zu | %7zu\n", name.c_str(),
                with->code_size(), without->code_size(),
                without->code_size() - with->code_size());
  }
  std::printf("%-20s | %9zu | %11zu | %7zu\n", "TOTAL", total_on, total_off,
              total_off - total_on);
  std::printf(
      "\nexpected: compaction recovers the MAC fusions (saved > 0 on "
      "product-heavy kernels)\n");
  return 0;
}
