// Table 1 reproduction: demonstrates every feature of the supported
// target-processor class on the built-in models.
//
//   data type           fixed-point
//   code type           time-stationary
//   instruction format  horizontal & encoded
//   memory structure    load-store & memory-register
//   addressing modes    post-modify
//   register structure  heterogeneous & homogeneous
//   program control     standard jump instructions
//   mode registers      supported
//
// Each row is verified with a concrete artifact (a template, a packed word,
// an inserted mode set, ...), so this doubles as an executable feature
// checklist.
#include <cstdio>
#include <string>

#include "core/compiler.h"
#include "core/record.h"
#include "ir/builder.h"

using namespace record;

namespace {

int g_failures = 0;

void check(const char* feature, bool ok, const std::string& evidence) {
  std::printf("  [%s] %-34s %s\n", ok ? "ok" : "FAIL", feature,
              evidence.c_str());
  if (!ok) ++g_failures;
}

bool has_template_containing(const core::RetargetResult& t,
                             const std::string& fragment) {
  for (const rtl::RTTemplate& tmpl : t.base->templates)
    if (tmpl.signature().find(fragment) != std::string::npos) return true;
  return false;
}

}  // namespace

int main() {
  std::printf("Table 1: target processor class features\n");
  util::DiagnosticSink diags;
  core::RetargetOptions options;

  auto c25 = core::Record::retarget_model("tms320c25", options, diags);
  auto demo = core::Record::retarget_model("demo", options, diags);
  auto bass = core::Record::retarget_model("bass_boost", options, diags);
  if (!c25 || !demo || !bass) {
    std::printf("retargeting failed:\n%s\n", diags.str().c_str());
    return 1;
  }

  // Fixed-point data type: 16x16->32 multiplier templates exist.
  check("data type: fixed-point", has_template_containing(*c25, "*.32"),
        "tms320c25 has 16x16->32 product templates");

  // Time-stationary: compaction packs independent RTs into one word.
  {
    ir::ProgramBuilder b("pack");
    b.reg("acc", "ACC");
    for (int i = 0; i < 3; ++i)
      b.cell("x" + std::to_string(i), "ram", 16 + i)
          .cell("h" + std::to_string(i), "ram", 24 + i);
    b.let("acc",
          ir::e_add(ir::e_add(ir::e_mul(ir::e_var("x0"), ir::e_var("h0")),
                              ir::e_mul(ir::e_var("x1"), ir::e_var("h1"))),
                    ir::e_mul(ir::e_var("x2"), ir::e_var("h2"))));
    core::Compiler compiler(*c25);
    util::DiagnosticSink d;
    auto res = compiler.compile(b.take(), core::CompileOptions{}, d);
    bool packed = false;
    if (res)
      for (const auto& region : res->compacted.program.regions)
        for (const auto& word : region.words)
          if (word.rts.size() > 1) packed = true;
    check("code type: time-stationary", packed,
          "multiply and accumulate share one instruction word (MPYA)");
  }

  // Instruction formats.
  check("instruction format: horizontal", demo->template_count() > 0,
        "demo uses direct microcode fields");
  check("instruction format: encoded", c25->template_count() > 0,
        "tms320c25 decodes a 4-bit opcode through random logic");

  // Memory structure.
  check("memory structure: load-store",
        has_template_containing(*demo, ":= mem["),
        "demo moves memory through registers");
  check("memory structure: memory-register",
        has_template_containing(*c25, "+.32(ACC,SXT.32(ram["),
        "tms320c25 ALU takes a memory operand directly");

  // Post-modify addressing.
  check("addressing: post-modify",
        has_template_containing(*c25, "AR1 := +.16(AR1,#1"),
        "AR1 := AR1 + 1 extracted as a parallel RT");

  // Register structure.
  check("registers: heterogeneous", true,
        "tms320c25 ACC/T/P/AR are special-purpose (grammar non-terminals)");
  check("registers: homogeneous", has_template_containing(*demo, "R2 :="),
        "demo R0..R2 are interchangeable ALU operands");

  // Program control.
  {
    bool jump = false;
    for (const rtl::RTTemplate& t : c25->base->templates)
      if (t.dest == "PC" && t.value->kind == rtl::RTNode::Kind::Imm)
        jump = true;
    check("program control: jumps", jump,
          "PC := #imm16 template (B/BZ/BNZ) extracted");
  }

  // Mode registers.
  {
    ir::ProgramBuilder b("mode");
    b.reg("a", "A");
    b.cell("x", "sram", 1);
    b.cell("y", "sram", 2);
    b.let("y", ir::e_lo(ir::e_var("a")));
    core::Compiler compiler(*bass);
    util::DiagnosticSink d;
    auto res = compiler.compile(b.take(), core::CompileOptions{}, d);
    bool mode_set =
        res && res->compacted.stats.mode_sets_inserted > 0;
    check("mode registers", mode_set,
          "bass_boost scaling mode tracked; set-mode word inserted");
  }

  std::printf("%d failures\n", g_failures);
  return g_failures == 0 ? 0 : 1;
}
