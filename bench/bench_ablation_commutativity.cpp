// Ablation (paper section 3): value of commutative template extension.
//
// "Exploitation of commutativity avoids potential code quality overhead due
//  to badly structured expression trees in the intermediate program
//  representation."
//
// The ten DSPStone kernels plus deliberately reversed-operand statements are
// compiled with and without the extension. On symmetric statements both
// grammars find the same optimum; on reversed operands of the asymmetric
// TMS320C25 datapath (the ALU's first operand is always ACC) the plain
// grammar either pays extra transfers or cannot cover the tree at all.
#include <cstdio>
#include <string>

#include "core/compiler.h"
#include "core/record.h"
#include "dspstone/kernels.h"
#include "ir/builder.h"

using namespace record;

namespace {

long compile_size(const core::RetargetResult& target,
                  const ir::Program& prog) {
  util::DiagnosticSink d;
  core::Compiler compiler(target);
  auto res = compiler.compile(prog, core::CompileOptions{}, d);
  return res ? static_cast<long>(res->code_size()) : -1;
}

ir::Program reversed(const std::string& name, hdl::OpKind op) {
  // acc = ram[5] <op> acc  — the variable operand on the LEFT, the
  // accumulator on the RIGHT: only a commuted template can cover this
  // shape on an accumulator datapath.
  ir::ProgramBuilder b(name);
  b.reg("acc", "ACC");
  b.cell("x", "ram", 5);
  b.let("acc", ir::e_bin(op, ir::e_var("x"), ir::e_var("acc")));
  return b.take();
}

}  // namespace

int main() {
  util::DiagnosticSink diags;
  core::RetargetOptions with;
  auto ext = core::Record::retarget_model("tms320c25", with, diags);
  core::RetargetOptions without;
  without.commutativity = false;
  without.standard_rewrites = false;
  auto plain = core::Record::retarget_model("tms320c25", without, diags);
  if (!ext || !plain) {
    std::printf("retargeting failed:\n%s\n", diags.str().c_str());
    return 1;
  }
  std::printf(
      "Commutativity ablation on tms320c25 (template base: %zu extended vs "
      "%zu plain)\n",
      ext->template_count(), plain->template_count());
  std::printf("%-22s | %9s | %8s | %s\n", "program", "extended", "plain",
              "(-1 = no cover)");

  for (const std::string& name : dspstone::kernel_names()) {
    ir::Program prog = dspstone::kernel(name);
    std::printf("%-22s | %9ld | %8ld |\n", name.c_str(),
                compile_size(*ext, prog), compile_size(*plain, prog));
  }

  struct Rev {
    const char* name;
    hdl::OpKind op;
  } revs[] = {
      {"rev_and (x & acc)", hdl::OpKind::And},
      {"rev_or  (x | acc)", hdl::OpKind::Or},
      {"rev_xor (x ^ acc)", hdl::OpKind::Xor},
      {"rev_add (x + acc)", hdl::OpKind::Add},
  };
  for (const Rev& r : revs) {
    ir::Program prog = reversed(r.name, r.op);
    std::printf("%-22s | %9ld | %8ld |\n", r.name,
                compile_size(*ext, prog), compile_size(*plain, prog));
  }
  std::printf(
      "\nexpected: identical sizes on symmetric kernels; reversed-operand "
      "statements need the extension\n");
  return 0;
}
