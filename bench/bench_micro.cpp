// Micro-benchmarks (google-benchmark) for the primitive layers:
// BDD operations, HDL parsing, instruction-set extraction and BURS
// labelling. These give the grammar-dependent constants behind the
// Table 3 / throughput numbers.
#include <benchmark/benchmark.h>

#include "bdd/bdd.h"
#include "core/record.h"
#include "hdl/parser.h"
#include "hdl/sema.h"
#include "ir/builder.h"
#include "models/models.h"
#include "select/selector.h"

using namespace record;

static void BM_BddMajority(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    bdd::BddManager mgr;
    std::vector<int> vars;
    for (int i = 0; i < n; ++i) vars.push_back(mgr.new_var("v"));
    // Majority-of-n via Shannon expansion — a classic mid-size BDD.
    bdd::Ref sum = bdd::kFalse;
    for (int i = 0; i < n; ++i) {
      bdd::Ref carry = bdd::kFalse;
      for (int j = i + 1; j < n; ++j)
        carry = mgr.lor(carry, mgr.land(mgr.var(vars[i]), mgr.var(vars[j])));
      sum = mgr.lor(sum, carry);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BddMajority)->Arg(8)->Arg(16)->Arg(24);

static void BM_HdlParse(benchmark::State& state) {
  std::string_view src = models::tms320c25_source();
  for (auto _ : state) {
    util::DiagnosticSink diags;
    auto model = hdl::parse(src, diags);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_HdlParse);

static void BM_FullRetarget(benchmark::State& state) {
  static const char* kModels[] = {"bass_boost", "manocpu", "tms320c25"};
  const char* name = kModels[state.range(0)];
  for (auto _ : state) {
    util::DiagnosticSink diags;
    auto result =
        core::Record::retarget_model(name, core::RetargetOptions{}, diags);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(name);
}
BENCHMARK(BM_FullRetarget)->Arg(0)->Arg(1)->Arg(2);

static void BM_BursLabel(benchmark::State& state) {
  util::DiagnosticSink diags;
  static auto target = core::Record::retarget_model(
      "tms320c25", core::RetargetOptions{}, diags);
  ir::ProgramBuilder b("bench");
  b.reg("acc", "ACC");
  const int terms = static_cast<int>(state.range(0));
  ir::ExprPtr sum;
  for (int i = 0; i < terms; ++i) {
    std::string u = "u" + std::to_string(i), v = "v" + std::to_string(i);
    b.cell(u, "ram", i).cell(v, "ram", 32 + i);
    auto prod = ir::e_mul(ir::e_var(u), ir::e_var(v));
    sum = sum ? ir::e_add(std::move(sum), std::move(prod)) : std::move(prod);
  }
  b.let("acc", std::move(sum));
  ir::Program prog = b.take();
  for (auto _ : state) {
    util::DiagnosticSink d;
    select::CodeSelector selector(*target->base, target->tree_grammar, d);
    auto result = selector.select(prog);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BursLabel)->Arg(4)->Arg(16)->Arg(64);

BENCHMARK_MAIN();
