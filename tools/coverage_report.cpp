// coverage_report: selection-coverage survey over the built-in models.
//
// Retargets every built-in model, compiles the shared accumulator-chain
// workload (models/workload.h) at several sizes with coverage recording on,
// and reports which grammar rules / BURS states / frozen-table transition
// slots the workload actually reached. Per model it prints the
// human-readable report (obs::coverage_report_text, including the
// uncovered-rule list by name) and merges everything into one
// machine-readable COVERAGE_report.json (committed at the repo root each PR,
// uploaded as a CI artifact), so selector coverage is tracked across commits
// the same way BENCH_selection.json tracks performance.
//
// --floor R gates on rule coverage: exit non-zero when any model's
// chosen-rule ratio falls below R (0..1) — the CI coverage gate. The chain
// workload deliberately exercises only part of each grammar (commutative
// duplicates and uncovered addressing modes stay cold), so the committed
// floor is a ratchet against regressions, not a 100% target.
//
// Usage: coverage_report [--out <path>] [--floor R] [--terms K]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "core/record.h"
#include "models/workload.h"
#include "obs/coverage.h"
#include "util/diagnostics.h"

using namespace record;

int main(int argc, char** argv) {
  std::string out_path = "COVERAGE_report.json";
  double floor = -1;
  int max_terms = 24;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--floor") && i + 1 < argc) {
      floor = std::strtod(argv[++i], nullptr);
      if (floor < 0 || floor > 1) {
        std::fprintf(stderr, "--floor wants a ratio in [0,1]\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--terms") && i + 1 < argc) {
      max_terms = std::atoi(argv[++i]);
      if (max_terms < 1) {
        std::fprintf(stderr, "--terms wants a positive count\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: coverage_report [--out path] [--floor R] "
                   "[--terms K]\n");
      return 2;
    }
  }

  obs::coverage().enable();

  int failures = 0;
  for (const models::ChainShape& s : models::kChainShapes) {
    util::DiagnosticSink diags;
    auto target =
        core::Record::retarget_model(s.model, core::RetargetOptions{}, diags);
    if (!target) {
      std::fprintf(stderr, "%s: retarget failed: %s\n", s.model,
                   diags.first_error().c_str());
      return 1;
    }
    core::Compiler compiler(*target);
    // Several chain sizes: k=1 is the pure load/store shape, larger chains
    // force accumulator reuse, spills and compaction merges.
    for (int k = 1; k <= max_terms; k = k < 4 ? k + 1 : k * 2) {
      ir::Program prog = models::chain_program(s, k);
      util::DiagnosticSink cd;
      if (!compiler.compile(prog, core::CompileOptions{}, cd)) {
        std::fprintf(stderr, "%s: compile failed at %d terms: %s\n", s.model,
                     k, cd.first_error().c_str());
        return 1;
      }
    }
  }

  const std::vector<obs::CoverageSnapshot> all =
      obs::coverage().snapshot_all();
  for (const obs::CoverageSnapshot& snap : all) {
    std::printf("%s", obs::coverage_report_text(snap).c_str());
    if (floor >= 0 && snap.rules_total > 0) {
      const double ratio = static_cast<double>(snap.rules_chosen_covered()) /
                           static_cast<double>(snap.rules_total);
      if (ratio < floor) {
        std::fprintf(stderr,
                     "COVERAGE FLOOR %s: chosen-rule coverage %.3f below "
                     "floor %.3f\n",
                     snap.target.c_str(), ratio, floor);
        ++failures;
      }
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << obs::coverage_report_json(all) << "\n";
  std::printf("wrote %s (%zu models)\n", out_path.c_str(), all.size());
  return failures == 0 ? 0 : 1;
}
