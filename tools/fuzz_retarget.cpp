// fuzz_retarget — generative differential-testing driver.
//
// For every seed in the range, generates a random processor model
// (testgen::generate_model), a batch of random kernel programs sized to it
// (testgen::generate_program), and pushes each (model, program) pair through
// the five-path differential oracle (testgen::check_pair): interpreter
// selection, table-driven selection, the warm persistent-cache path, a
// multi-worker CompileService batch, a per-word encode->decode round trip,
// and the semantic oracle (RT-level simulator vs. IR reference evaluator).
// On divergence the failing program is minimized — preserving the failure
// class (structural / decode / semantic), so a semantic repro cannot
// collapse into an unrelated structural one — and dumped as a standalone
// JSON repro file that --replay reproduces.
//
// Usage:
//   fuzz_retarget [--seeds A..B | --seeds N]  seed range (default 0..50)
//                 [--programs K]              programs per model (default 3)
//                 [--workers N]               service workers (default 4)
//                 [--service-every M]         run the service path on every
//                                             M-th pair only (default 1 =
//                                             all pairs; raise to trade
//                                             coverage for speed)
//                 [--fail-fast]               stop at the first failure
//                 [--repro-out PATH]          repro dump (default
//                                             fuzz_repro.json; later
//                                             failures get .2/.3/... names)
//                 [--replay PATH]             re-run a dumped repro instead
//                 [--keep-cache]              keep the oracle cache dir
//                 [--no-semantics]            skip the semantic oracle path
//                 [--trace PATH]              record spans and write a
//                                             Chrome/Perfetto trace (open in
//                                             ui.perfetto.dev) on exit
//                 [--verbose]                 per-pair progress lines
//
// Exit status: 0 = all pairs agree, 1 = divergence found, 2 = bad usage.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/record.h"
#include "ir/kernel_lang.h"
#include "obs/trace.h"
#include "service/json.h"
#include "testgen/modelgen.h"
#include "testgen/oracle.h"
#include "testgen/programgen.h"
#include "util/diagnostics.h"

namespace {

using namespace record;

struct Args {
  std::uint64_t seed_lo = 0;
  std::uint64_t seed_hi = 50;
  int programs = 3;
  int workers = 4;
  int service_every = 1;
  bool fail_fast = false;
  bool keep_cache = false;
  bool semantics = true;
  bool verbose = false;
  std::string repro_out = "fuzz_repro.json";
  std::string replay;
  std::string trace;
};

/// Strict decimal parse: a typo must not silently shrink the corpus. Digits
/// only — strtoull's sign handling would wrap "-1" to UINT64_MAX (and that
/// value itself is rejected so the inclusive seed loop can terminate).
bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return errno == 0 && end && *end == '\0' &&
         out != std::numeric_limits<std::uint64_t>::max();
}

bool parse_int(const char* s, int& out) {
  std::uint64_t v = 0;
  if (!s || !parse_u64(s, v) || v > 1u << 20) return false;
  out = static_cast<int>(v);
  return true;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = value();
      if (!v) return std::nullopt;
      std::string s(v);
      std::size_t dots = s.find("..");
      if (dots == std::string::npos) {
        a.seed_lo = 0;
        if (!parse_u64(s, a.seed_hi)) return std::nullopt;
      } else {
        if (!parse_u64(s.substr(0, dots), a.seed_lo) ||
            !parse_u64(s.substr(dots + 2), a.seed_hi))
          return std::nullopt;
      }
      if (a.seed_hi < a.seed_lo) return std::nullopt;
    } else if (arg == "--programs") {
      if (!parse_int(value(), a.programs)) return std::nullopt;
    } else if (arg == "--workers") {
      if (!parse_int(value(), a.workers)) return std::nullopt;
    } else if (arg == "--service-every") {
      if (!parse_int(value(), a.service_every)) return std::nullopt;
    } else if (arg == "--repro-out") {
      const char* v = value();
      if (!v) return std::nullopt;
      a.repro_out = v;
    } else if (arg == "--replay") {
      const char* v = value();
      if (!v) return std::nullopt;
      a.replay = v;
    } else if (arg == "--trace") {
      const char* v = value();
      if (!v) return std::nullopt;
      a.trace = v;
    } else if (arg == "--fail-fast") {
      a.fail_fast = true;
    } else if (arg == "--keep-cache") {
      a.keep_cache = true;
    } else if (arg == "--no-semantics") {
      a.semantics = false;
    } else if (arg == "--verbose") {
      a.verbose = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (a.programs < 1 || a.workers < 1 || a.service_every < 1)
    return std::nullopt;
  return a;
}

int replay_repro(const Args& args, const testgen::OracleOptions& oopts) {
  std::optional<testgen::Repro> r = testgen::load_repro(args.replay);
  if (!r) {
    std::fprintf(stderr, "cannot load repro file '%s'\n",
                 args.replay.c_str());
    return 2;
  }
  std::printf("replaying %s (model %s, knobs: %s)\n", args.replay.c_str(),
              r->model.c_str(), r->knobs.c_str());
  util::DiagnosticSink diags;
  std::optional<ir::Program> prog = ir::parse_kernel(r->kernel, diags);
  if (!prog) {
    std::fprintf(stderr, "repro kernel does not parse:\n%s\n",
                 diags.str().c_str());
    return 2;
  }
  testgen::OracleOptions ropts = oopts;
  if (r->spill_slots > 0) {
    ropts.compile.spill.scratch_base = r->spill_base;
    ropts.compile.spill.scratch_slots = r->spill_slots;
  }
  testgen::OracleReport rep = testgen::check_pair(r->hdl, *prog, ropts);
  if (rep.agree) {
    std::printf("PASS: pair agrees (compiled=%s, %zu words, semantics %s)\n",
                rep.compiled ? "yes" : "no", rep.words,
                rep.semantics_checked
                    ? "checked"
                    : (rep.semantics_skipped.empty()
                           ? "off"
                           : rep.semantics_skipped.c_str()));
    return 0;
  }
  std::printf("FAIL [%s]: %s\n",
              std::string(testgen::to_string(rep.clazz)).c_str(),
              rep.failure.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<Args> parsed = parse_args(argc, argv);
  if (!parsed) {
    std::fprintf(stderr,
                 "usage: fuzz_retarget [--seeds A..B|N] [--programs K] "
                 "[--workers N] [--service-every M] [--fail-fast] "
                 "[--repro-out PATH] [--replay PATH] [--keep-cache] "
                 "[--no-semantics] [--trace PATH] [--verbose]\n");
    return 2;
  }
  const Args& args = *parsed;
  if (!args.trace.empty()) obs::Tracer::instance().enable();

  testgen::OracleOptions oopts;
  oopts.service_workers = args.workers;
  oopts.cache_dir = testgen::default_cache_dir();
  oopts.semantics = args.semantics;

  int status;
  if (!args.replay.empty()) {
    status = replay_repro(args, oopts);
  } else {
    std::uint64_t models = 0, pairs = 0, compiled = 0, failures = 0;
    std::uint64_t templates_total = 0;
    std::uint64_t sem_checked = 0, sem_skipped = 0;
    bool stop = false;
    for (std::uint64_t seed = args.seed_lo; seed <= args.seed_hi && !stop;
         ++seed) {
      obs::Span seed_span("fuzz.seed");
      seed_span.note("seed", static_cast<std::int64_t>(seed));
      testgen::GeneratedModel model = testgen::generate_model(seed);
      ++models;
      // One cold retarget per model, shared across its programs (when it
      // fails, check_pair retries per pair and reports the diagnostic).
      std::shared_ptr<const core::RetargetResult> shared_target;
      {
        util::DiagnosticSink dr;
        if (auto t = core::Record::retarget(model.hdl,
                                            core::RetargetOptions{}, dr))
          shared_target =
              std::make_shared<const core::RetargetResult>(std::move(*t));
      }
      for (int p = 0; p < args.programs && !stop; ++p) {
        testgen::GeneratedProgram gp =
            testgen::generate_program(model, static_cast<std::uint64_t>(p));
        testgen::OracleOptions pair_opts = oopts;
        pair_opts.target = shared_target;
        if (model.spill_slots > 0) {
          pair_opts.compile.spill.scratch_base = model.spill_base;
          pair_opts.compile.spill.scratch_slots = model.spill_slots;
        }
        pair_opts.service =
            (pairs % static_cast<std::uint64_t>(args.service_every)) == 0;
        ++pairs;
        testgen::OracleReport rep =
            testgen::check_pair(model.hdl, gp.program, pair_opts);
        if (rep.compiled) ++compiled;
        if (rep.semantics_checked) ++sem_checked;
        if (!rep.semantics_skipped.empty()) ++sem_skipped;
        templates_total += rep.templates;
        if (args.verbose)
          std::printf("seed %llu p%d [%s]: %s (%zu templates, %zu words)\n",
                      static_cast<unsigned long long>(seed), p,
                      model.knobs.str().c_str(),
                      rep.agree ? (rep.compiled ? "ok" : "ok/uncovered")
                                : "FAIL",
                      rep.templates, rep.words);
        if (rep.agree) continue;

        ++failures;
        std::printf("FAIL [%s] seed=%llu program=%d model=%s\n  knobs: %s\n"
                    "  %s\n",
                    std::string(testgen::to_string(rep.clazz)).c_str(),
                    static_cast<unsigned long long>(seed), p,
                    model.name.c_str(), model.knobs.str().c_str(),
                    rep.failure.c_str());

        // Shrink the program while the same divergence CLASS persists —
        // shrinking a semantic repro must not accept candidates that fail
        // for an unrelated structural reason, or the minimum collapses into
        // a different bug.
        ir::Program minimized = testgen::minimize_program(
            gp.program, [&](const ir::Program& candidate) {
              testgen::OracleOptions mo = pair_opts;
              mo.service = false;  // keep shrinking cheap: the divergence
              mo.cache = false;    // almost always reproduces on paths 1+2
              testgen::OracleReport cand =
                  testgen::check_pair(model.hdl, candidate, mo);
              return !cand.agree && cand.clazz == rep.clazz;
            });
        testgen::Repro repro;
        repro.model_seed = seed;
        repro.program_seed = static_cast<std::uint64_t>(p);
        repro.model = model.name;
        repro.knobs = model.knobs.str();
        repro.spill_base = model.spill_base;
        repro.spill_slots = model.spill_slots;
        repro.hdl = model.hdl;
        repro.kernel = testgen::kernel_text(minimized);
        repro.failure = rep.failure;
        repro.failure_class = std::string(testgen::to_string(rep.clazz));
        // One file per failure, so earlier repros survive later ones.
        std::string repro_path =
            failures == 1 ? args.repro_out
                          : args.repro_out + "." + std::to_string(failures);
        if (testgen::write_repro(repro_path, repro))
          std::printf("  repro written to %s (replay with --replay)\n",
                      repro_path.c_str());
        else
          std::fprintf(stderr, "  cannot write repro to %s\n",
                       repro_path.c_str());
        if (args.fail_fast) stop = true;
      }
    }

    service::Json summary = service::Json::object();
    summary.set("models", service::Json(static_cast<double>(models)));
    summary.set("pairs", service::Json(static_cast<double>(pairs)));
    summary.set("compiled", service::Json(static_cast<double>(compiled)));
    summary.set("failures", service::Json(static_cast<double>(failures)));
    summary.set("semantics_checked",
                service::Json(static_cast<double>(sem_checked)));
    summary.set("semantics_skipped",
                service::Json(static_cast<double>(sem_skipped)));
    summary.set("avg_templates",
                service::Json(models ? static_cast<double>(templates_total) /
                                           static_cast<double>(pairs)
                                     : 0.0));
    std::printf("%s\n", summary.dump().c_str());
    status = failures == 0 ? 0 : 1;
  }

  if (!args.keep_cache) {
    std::error_code ec;
    std::filesystem::remove_all(oopts.cache_dir, ec);
  }
  if (!args.trace.empty()) {
    if (obs::Tracer::instance().write_chrome_trace(args.trace))
      std::fprintf(stderr, "trace written to %s (open in ui.perfetto.dev)\n",
                   args.trace.c_str());
    else
      std::fprintf(stderr, "cannot write trace to %s\n", args.trace.c_str());
  }
  return status;
}
