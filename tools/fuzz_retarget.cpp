// fuzz_retarget — generative differential-testing driver.
//
// For every seed in the range, generates a random processor model
// (testgen::generate_model), a batch of random kernel programs sized to it
// (testgen::generate_program), and pushes each (model, program) pair through
// the six-path differential oracle (testgen::check_pair): interpreter
// selection, table-driven selection, the warm persistent-cache path, a
// multi-worker CompileService batch, a per-word encode->decode round trip,
// the semantic oracle (RT-level simulator vs. IR reference evaluator), and
// the compaction cross-check (the same selection with compaction disabled,
// simulated too, attributing divergences the packer introduced).
// On divergence the failing program is minimized — preserving the failure
// class (structural / decode / semantic / compaction), so a semantic repro
// cannot collapse into an unrelated structural one — and dumped as a
// standalone JSON repro file that --replay reproduces.
//
// Usage:
//   fuzz_retarget [--seeds A..B | --seeds N]  seed range (default 0..50)
//                 [--programs K]              programs per model (default 3)
//                 [--workers N]               service workers (default 4)
//                 [--service-every M]         run the service path on every
//                                             M-th pair only (default 1 =
//                                             all pairs; raise to trade
//                                             coverage for speed)
//                 [--fail-fast]               stop at the first failure
//                 [--repro-out PATH]          repro dump (default
//                                             fuzz_repro.json; later
//                                             failures get .2/.3/... names)
//                 [--replay PATH]             re-run a dumped repro instead
//                 [--keep-cache]              keep the oracle cache dir
//                 [--no-semantics]            skip the semantic oracle path
//                 [--no-compact]              compile with compaction off
//                                             (every RT its own word): the
//                                             ablation twin of the default
//                                             run — also disables the
//                                             compaction cross-check, which
//                                             needs a compacted reference
//                 [--trace PATH]              record spans and write a
//                                             Chrome/Perfetto trace (open in
//                                             ui.perfetto.dev) on exit
//                 [--explain]                 after each pair, print the
//                                             chosen derivation per statement
//                                             (rule text, costs of rejected
//                                             alternatives, immediate fits)
//                 [--coverage-guided]         spend the same pair budget
//                                             (seed count x programs) under
//                                             coverage feedback: every model
//                                             seed gets one program, then
//                                             models keep receiving programs
//                                             only while each pair still
//                                             yields new chosen rules /
//                                             transition slots at a rate
//                                             competitive with opening a
//                                             fresh model seed; the freed
//                                             budget explores seeds past the
//                                             range
//                 [--chaos]                   chaos mode: before each pair,
//                                             deterministically (per seed and
//                                             program) arm a random subset of
//                                             failpoints (util/failpoint.h)
//                                             at a 1/16 hit rate, sometimes
//                                             with latency injection and a
//                                             per-job deadline, and assert
//                                             every injected fault yields a
//                                             correct result or a clean
//                                             structured error — never a
//                                             crash, hang, or divergence
//                 [--verbose]                 per-pair progress lines
//
// Selection-coverage recording is always on: the summary line carries a
// "coverage" section with per-model covered/total and the distinct-coverage
// totals, so a guided run is directly comparable against a sequential run of
// the same budget. Chaos runs add a "chaos" section {injected, tolerated}.
//
// Exit status: 0 = all pairs agree, 1 = divergence found, 2 = bad usage.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <limits>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "core/record.h"
#include "ir/kernel_lang.h"
#include "obs/coverage.h"
#include "obs/trace.h"
#include "service/json.h"
#include "testgen/modelgen.h"
#include "testgen/oracle.h"
#include "testgen/programgen.h"
#include "util/diagnostics.h"
#include "util/failpoint.h"

namespace {

using namespace record;

struct Args {
  std::uint64_t seed_lo = 0;
  std::uint64_t seed_hi = 50;
  int programs = 3;
  int workers = 4;
  int service_every = 1;
  bool fail_fast = false;
  bool keep_cache = false;
  bool semantics = true;
  bool compact = true;
  bool verbose = false;
  bool explain = false;
  bool coverage_guided = false;
  bool chaos = false;
  std::string repro_out = "fuzz_repro.json";
  std::string replay;
  std::string trace;
};

/// Strict decimal parse: a typo must not silently shrink the corpus. Digits
/// only — strtoull's sign handling would wrap "-1" to UINT64_MAX (and that
/// value itself is rejected so the inclusive seed loop can terminate).
bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return errno == 0 && end && *end == '\0' &&
         out != std::numeric_limits<std::uint64_t>::max();
}

bool parse_int(const char* s, int& out) {
  std::uint64_t v = 0;
  if (!s || !parse_u64(s, v) || v > 1u << 20) return false;
  out = static_cast<int>(v);
  return true;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = value();
      if (!v) return std::nullopt;
      std::string s(v);
      std::size_t dots = s.find("..");
      if (dots == std::string::npos) {
        a.seed_lo = 0;
        if (!parse_u64(s, a.seed_hi)) return std::nullopt;
      } else {
        if (!parse_u64(s.substr(0, dots), a.seed_lo) ||
            !parse_u64(s.substr(dots + 2), a.seed_hi))
          return std::nullopt;
      }
      if (a.seed_hi < a.seed_lo) return std::nullopt;
    } else if (arg == "--programs") {
      if (!parse_int(value(), a.programs)) return std::nullopt;
    } else if (arg == "--workers") {
      if (!parse_int(value(), a.workers)) return std::nullopt;
    } else if (arg == "--service-every") {
      if (!parse_int(value(), a.service_every)) return std::nullopt;
    } else if (arg == "--repro-out") {
      const char* v = value();
      if (!v) return std::nullopt;
      a.repro_out = v;
    } else if (arg == "--replay") {
      const char* v = value();
      if (!v) return std::nullopt;
      a.replay = v;
    } else if (arg == "--trace") {
      const char* v = value();
      if (!v) return std::nullopt;
      a.trace = v;
    } else if (arg == "--fail-fast") {
      a.fail_fast = true;
    } else if (arg == "--keep-cache") {
      a.keep_cache = true;
    } else if (arg == "--no-semantics") {
      a.semantics = false;
    } else if (arg == "--no-compact") {
      a.compact = false;
    } else if (arg == "--verbose") {
      a.verbose = true;
    } else if (arg == "--explain") {
      a.explain = true;
    } else if (arg == "--coverage-guided") {
      a.coverage_guided = true;
    } else if (arg == "--chaos") {
      a.chaos = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (a.programs < 1 || a.workers < 1 || a.service_every < 1)
    return std::nullopt;
  return a;
}

int replay_repro(const Args& args, const testgen::OracleOptions& oopts) {
  std::optional<testgen::Repro> r = testgen::load_repro(args.replay);
  if (!r) {
    std::fprintf(stderr, "cannot load repro file '%s'\n",
                 args.replay.c_str());
    return 2;
  }
  std::printf("replaying %s (model %s, knobs: %s)\n", args.replay.c_str(),
              r->model.c_str(), r->knobs.c_str());
  util::DiagnosticSink diags;
  std::optional<ir::Program> prog = ir::parse_kernel(r->kernel, diags);
  if (!prog) {
    std::fprintf(stderr, "repro kernel does not parse:\n%s\n",
                 diags.str().c_str());
    return 2;
  }
  testgen::OracleOptions ropts = oopts;
  if (r->spill_slots > 0) {
    ropts.compile.spill.scratch_base = r->spill_base;
    ropts.compile.spill.scratch_slots = r->spill_slots;
  }
  testgen::OracleReport rep = testgen::check_pair(r->hdl, *prog, ropts);
  if (rep.agree) {
    std::printf("PASS: pair agrees (compiled=%s, %zu words, semantics %s)\n",
                rep.compiled ? "yes" : "no", rep.words,
                rep.semantics_checked
                    ? "checked"
                    : (rep.semantics_skipped.empty()
                           ? "off"
                           : rep.semantics_skipped.c_str()));
    return 0;
  }
  std::printf("FAIL [%s]: %s\n",
              std::string(testgen::to_string(rep.clazz)).c_str(),
              rep.failure.c_str());
  return 1;
}

struct Counters {
  std::uint64_t models = 0, pairs = 0, compiled = 0, failures = 0;
  std::uint64_t templates_total = 0;
  std::uint64_t sem_checked = 0, sem_skipped = 0;
  std::uint64_t faults_injected = 0, faults_tolerated = 0;  // chaos mode
  // Packing shape across compiled pairs (from the compacted reference):
  // pairs where some word carries >= 2 RTs, the word/RT totals behind the
  // mean-RTs-per-word figure, and pairs the compaction cross-check covered.
  std::uint64_t packed_pairs = 0, multi_rt_words = 0;
  std::uint64_t words_total = 0, slot_rts_total = 0;
  std::uint64_t compaction_checked = 0;
  bool stop = false;
};

/// A generated model plus its shared cold retarget (when retargeting fails,
/// check_pair retries per pair and reports the diagnostic).
struct ModelRun {
  std::uint64_t seed = 0;
  testgen::GeneratedModel model;
  std::shared_ptr<const core::RetargetResult> target;
};

ModelRun make_model_run(std::uint64_t seed, Counters& c) {
  ModelRun mr;
  mr.seed = seed;
  mr.model = testgen::generate_model(seed);
  ++c.models;
  util::DiagnosticSink dr;
  if (auto t =
          core::Record::retarget(mr.model.hdl, core::RetargetOptions{}, dr))
    mr.target = std::make_shared<const core::RetargetResult>(std::move(*t));
  return mr;
}

/// Compiles the pair once more with an ExplainSink attached and prints the
/// chosen derivation per statement. A separate compile so the oracle's own
/// differential paths stay explain-free.
void print_explain(const ModelRun& mr, const testgen::GeneratedProgram& gp,
                   const testgen::OracleOptions& pair_opts, int p) {
  if (!mr.target) return;
  select::ExplainSink sink;
  core::CompileOptions copts = pair_opts.compile;
  copts.explain = &sink;
  util::DiagnosticSink diags;
  core::Compiler compiler(mr.target);
  if (!compiler.compile(gp.program, copts, diags)) {
    std::printf("explain seed=%llu p%d: compile failed\n",
                static_cast<unsigned long long>(mr.seed), p);
    return;
  }
  std::printf("explain seed=%llu p%d model=%s\n",
              static_cast<unsigned long long>(mr.seed), p,
              mr.model.name.c_str());
  for (const select::StmtExplain& ex : sink.stmts) {
    std::printf("  %s  (cost %d%s)\n", ex.source.c_str(), ex.cost,
                ex.promoted ? ", promoted precision" : "");
    for (const select::ExplainStep& st : ex.steps) {
      std::printf("    [%d]%s %s  cost=%d  at %s\n", st.rule,
                  st.is_chain ? " chain" : "", st.rule_text.c_str(), st.cost,
                  st.node.c_str());
      for (const select::ExplainImm& imm : st.imms)
        std::printf("        imm%d = %lld (%s)\n", imm.width,
                    static_cast<long long>(imm.value),
                    imm.fits ? "fits" : "does not fit");
      for (const select::ExplainAlternative& alt : st.alternatives)
        std::printf("        rejected [%d] %s  cost=%d\n", alt.rule,
                    alt.rule_text.c_str(), alt.cost);
    }
  }
}

/// One (model, program-seed) pair through the oracle: generation, the
/// differential check, counters, the verbose line, and on divergence the
/// class-preserving minimization + repro dump. Shared by the sequential and
/// coverage-guided schedules.
void run_pair(const Args& args, const testgen::OracleOptions& oopts,
              const ModelRun& mr, int p, Counters& c) {
  testgen::GeneratedProgram gp =
      testgen::generate_program(mr.model, static_cast<std::uint64_t>(p));
  testgen::OracleOptions pair_opts = oopts;
  pair_opts.target = mr.target;
  if (mr.model.spill_slots > 0) {
    pair_opts.compile.spill.scratch_base = mr.model.spill_base;
    pair_opts.compile.spill.scratch_slots = mr.model.spill_slots;
  }
  pair_opts.service =
      (c.pairs % static_cast<std::uint64_t>(args.service_every)) == 0;
  ++c.pairs;

  // Chaos: deterministically (per seed and program index) arm a random
  // subset of failpoints before the oracle runs, then account for every
  // fault the run injected. Hit rates span every:1 .. every:16 — sites are
  // disarmed (hit counts reset) per pair, so a uniform 1/16 rate would
  // almost never reach its Nth hit on low-traffic sites and inject nothing.
  // The oracle tolerates only structured faults; output that compiles must
  // stay bit-identical.
  std::string chaos_plan;
  std::uint64_t fires_before = 0;
  if (args.chaos) {
    util::failpoint_disarm_all();
    std::mt19937_64 rng((mr.seed << 8) ^
                        (static_cast<std::uint64_t>(p) + 1) *
                            0x9e3779b97f4a7c15ULL);
    static const char* kSites[] = {
        "burstab.cache.read",   "burstab.cache.write",
        "burstab.cache.mmap",   "burstab.cache.open",
        "burstab.pool.adopt",   "burstab.tables.rebuild",
        "service.job.alloc",    "service.worker.job"};
    for (const char* site : kSites) {
      if ((rng() & 1) == 0) continue;
      std::string spec =
          "every:" + std::to_string(std::uint64_t(1) << (rng() % 5));
      if (std::string_view(site) == "service.worker.job" && rng() % 4 == 0)
        spec = "sleep:2";  // latency injection drives the deadline path
      util::failpoint_arm(site, spec);
      chaos_plan += std::string(" ") + site + "=" + spec;
    }
    static const std::uint64_t kDeadlines[] = {0, 0, 1, 2000};
    pair_opts.chaos = true;
    pair_opts.service_deadline_ms = kDeadlines[rng() % 4];
    if (pair_opts.service_deadline_ms)
      chaos_plan +=
          " deadline_ms=" + std::to_string(pair_opts.service_deadline_ms);
    fires_before = util::failpoint_fire_total();
  }
  testgen::OracleReport rep =
      testgen::check_pair(mr.model.hdl, gp.program, pair_opts);
  if (args.chaos) {
    c.faults_injected += util::failpoint_fire_total() - fires_before;
    c.faults_tolerated += rep.faults_tolerated;
    util::failpoint_disarm_all();
  }
  if (rep.compiled) {
    ++c.compiled;
    c.words_total += rep.words;
    c.slot_rts_total += rep.total_slot_rts;
    c.multi_rt_words += rep.multi_rt_words;
    if (rep.multi_rt_words > 0) ++c.packed_pairs;
  }
  if (rep.semantics_checked) ++c.sem_checked;
  if (rep.compaction_checked) ++c.compaction_checked;
  if (!rep.semantics_skipped.empty()) ++c.sem_skipped;
  c.templates_total += rep.templates;
  if (args.verbose)
    std::printf("seed %llu p%d [%s]: %s (%zu templates, %zu words)\n",
                static_cast<unsigned long long>(mr.seed), p,
                mr.model.knobs.str().c_str(),
                rep.agree ? (rep.compiled ? "ok" : "ok/uncovered") : "FAIL",
                rep.templates, rep.words);
  if (args.explain) print_explain(mr, gp, pair_opts, p);
  if (rep.agree) return;

  ++c.failures;
  std::printf("FAIL [%s] seed=%llu program=%d model=%s\n  knobs: %s\n"
              "  %s\n",
              std::string(testgen::to_string(rep.clazz)).c_str(),
              static_cast<unsigned long long>(mr.seed), p,
              mr.model.name.c_str(), mr.model.knobs.str().c_str(),
              rep.failure.c_str());
  if (args.chaos)
    std::printf("  chaos plan:%s\n",
                chaos_plan.empty() ? " (no failpoints armed)"
                                   : chaos_plan.c_str());

  std::string repro_kernel;
  if (args.chaos) {
    // Failpoints fire by hit count, so every shrink run re-phases the
    // injected faults and the minimizer would chase a moving target; ship
    // the unminimized program with the armed plan recorded instead.
    repro_kernel = testgen::kernel_text(gp.program);
  } else {
    // Shrink the program while the same divergence CLASS persists —
    // shrinking a semantic repro must not accept candidates that fail
    // for an unrelated structural reason, or the minimum collapses into
    // a different bug.
    ir::Program minimized = testgen::minimize_program(
        gp.program, [&](const ir::Program& candidate) {
          testgen::OracleOptions mo = pair_opts;
          mo.service = false;  // keep shrinking cheap: the divergence
          mo.cache = false;    // almost always reproduces on paths 1+2
          testgen::OracleReport cand =
              testgen::check_pair(mr.model.hdl, candidate, mo);
          return !cand.agree && cand.clazz == rep.clazz;
        });
    repro_kernel = testgen::kernel_text(minimized);
  }
  testgen::Repro repro;
  repro.model_seed = mr.seed;
  repro.program_seed = static_cast<std::uint64_t>(p);
  repro.model = mr.model.name;
  repro.knobs = mr.model.knobs.str();
  if (args.chaos) repro.knobs += " chaos:" + chaos_plan;
  repro.spill_base = mr.model.spill_base;
  repro.spill_slots = mr.model.spill_slots;
  repro.hdl = mr.model.hdl;
  repro.kernel = repro_kernel;
  repro.failure = rep.failure;
  repro.failure_class = std::string(testgen::to_string(rep.clazz));
  // One file per failure, so earlier repros survive later ones.
  std::string repro_path =
      c.failures == 1 ? args.repro_out
                      : args.repro_out + "." + std::to_string(c.failures);
  if (testgen::write_repro(repro_path, repro))
    std::printf("  repro written to %s (replay with --replay)\n",
                repro_path.c_str());
  else
    std::fprintf(stderr, "  cannot write repro to %s\n", repro_path.c_str());
  if (args.fail_fast) c.stop = true;
}

struct GuidedStats {
  std::uint64_t budget = 0;
  std::uint64_t retained = 0;     // pairs that reached new coverage
  std::uint64_t fresh_seeds = 0;  // model seeds explored past seed_hi
};

/// Coverage-guided schedule over the same pair budget as the sequential
/// loop: (seed count) x programs. Phase 1 gives every model seed one
/// program; the leftover budget rotates through the models whose pairs
/// keep EARNING their slot, then explores fresh model seeds past seed_hi.
///
/// The retention bar is an opportunity cost, not "added anything at all":
/// almost every program reaches a few new rules, so a zero-threshold would
/// keep saturated models in the rotation forever and never free budget for
/// the far stronger move — a brand-new model seed, whose selector is
/// entirely unexplored. A model therefore stays only while its last pair
/// yielded at least half the running average first-program yield (what a
/// fresh seed is expected to return). Novelty counts new CHOSEN rules and
/// warm transition slots (matched-rule and state deltas track them but
/// saturate much slower, which would blur the signal).
GuidedStats run_guided(const Args& args, const testgen::OracleOptions& oopts,
                       Counters& c) {
  GuidedStats g;
  g.budget = (args.seed_hi - args.seed_lo + 1) *
             static_cast<std::uint64_t>(args.programs);
  auto distinct_of = [](const ModelRun& mr) -> std::uint64_t {
    const std::string& name =
        mr.target ? mr.target->processor : mr.model.name;
    const obs::CoverageMap* m = obs::coverage().find(name);
    if (!m) return 0;
    const obs::CoverageDistinct d = m->distinct();
    return d.rules_chosen + d.transitions;
  };
  std::uint64_t used = 0;
  auto run_measured = [&](const ModelRun& mr, int p) -> std::uint64_t {
    const std::uint64_t before = distinct_of(mr);
    run_pair(args, oopts, mr, p, c);
    ++used;
    const std::uint64_t delta = distinct_of(mr) - before;
    if (delta > 0) ++g.retained;
    return delta;
  };
  // Running mean of first-program yields = the expected value of opening a
  // fresh model seed; the rotation bar is half of it.
  std::uint64_t first_yield_sum = 0, first_yield_count = 0;
  auto bar = [&]() -> std::uint64_t {
    return first_yield_count ? first_yield_sum / (2 * first_yield_count) : 0;
  };
  struct Active {
    ModelRun mr;
    int next_program = 1;
  };
  std::deque<Active> rotation;
  auto open_seed = [&](std::uint64_t seed) {
    Active a{make_model_run(seed, c), 1};
    const std::uint64_t delta = run_measured(a.mr, 0);
    first_yield_sum += delta;
    ++first_yield_count;
    if (delta >= std::max<std::uint64_t>(bar(), 1))
      rotation.push_back(std::move(a));
  };
  for (std::uint64_t seed = args.seed_lo;
       seed <= args.seed_hi && used < g.budget && !c.stop; ++seed)
    open_seed(seed);
  std::uint64_t next_fresh = args.seed_hi + 1;
  while (used < g.budget && !c.stop) {
    if (!rotation.empty()) {
      Active a = std::move(rotation.front());
      rotation.pop_front();
      if (run_measured(a.mr, a.next_program++) >=
          std::max<std::uint64_t>(bar(), 1))
        rotation.push_back(std::move(a));
    } else {
      ++g.fresh_seeds;
      open_seed(next_fresh++);
    }
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<Args> parsed = parse_args(argc, argv);
  if (!parsed) {
    std::fprintf(stderr,
                 "usage: fuzz_retarget [--seeds A..B|N] [--programs K] "
                 "[--workers N] [--service-every M] [--fail-fast] "
                 "[--repro-out PATH] [--replay PATH] [--keep-cache] "
                 "[--no-semantics] [--no-compact] [--trace PATH] [--explain] "
                 "[--coverage-guided] [--chaos] [--verbose]\n");
    return 2;
  }
  const Args& args = *parsed;
  if (!args.trace.empty()) obs::Tracer::instance().enable();
  // Always record selection coverage: the counters are cheap relaxed
  // increments and the summary's coverage section makes guided and
  // sequential runs of the same budget directly comparable.
  obs::coverage().enable();

  testgen::OracleOptions oopts;
  oopts.service_workers = args.workers;
  oopts.cache_dir = testgen::default_cache_dir();
  oopts.semantics = args.semantics;
  oopts.compile.compact.enabled = args.compact;

  int status;
  if (!args.replay.empty()) {
    status = replay_repro(args, oopts);
  } else {
    Counters c;
    std::optional<GuidedStats> guided;
    if (args.coverage_guided) {
      guided = run_guided(args, oopts, c);
    } else {
      for (std::uint64_t seed = args.seed_lo; seed <= args.seed_hi && !c.stop;
           ++seed) {
        obs::Span seed_span("fuzz.seed");
        seed_span.note("seed", static_cast<std::int64_t>(seed));
        ModelRun mr = make_model_run(seed, c);
        for (int p = 0; p < args.programs && !c.stop; ++p)
          run_pair(args, oopts, mr, p, c);
      }
    }

    service::Json summary = service::Json::object();
    summary.set("models", service::Json(static_cast<double>(c.models)));
    summary.set("pairs", service::Json(static_cast<double>(c.pairs)));
    summary.set("compiled", service::Json(static_cast<double>(c.compiled)));
    summary.set("failures", service::Json(static_cast<double>(c.failures)));
    summary.set("semantics_checked",
                service::Json(static_cast<double>(c.sem_checked)));
    summary.set("semantics_skipped",
                service::Json(static_cast<double>(c.sem_skipped)));
    summary.set("avg_templates",
                service::Json(c.pairs
                                  ? static_cast<double>(c.templates_total) /
                                        static_cast<double>(c.pairs)
                                  : 0.0));
    {
      // Packing shape of the run: how often compaction actually packed, and
      // the cross-check coverage. A multi-issue campaign gates on
      // packed_share (the fraction of compiled pairs where some word
      // carries >= 2 RTs).
      service::Json jp = service::Json::object();
      jp.set("enabled", service::Json(args.compact));
      jp.set("checked_pairs",
             service::Json(static_cast<double>(c.compaction_checked)));
      jp.set("packed_pairs",
             service::Json(static_cast<double>(c.packed_pairs)));
      jp.set("multi_rt_words",
             service::Json(static_cast<double>(c.multi_rt_words)));
      jp.set("mean_rts_per_word",
             service::Json(c.words_total
                               ? static_cast<double>(c.slot_rts_total) /
                                     static_cast<double>(c.words_total)
                               : 0.0));
      jp.set("packed_share",
             service::Json(c.compiled
                               ? static_cast<double>(c.packed_pairs) /
                                     static_cast<double>(c.compiled)
                               : 0.0));
      summary.set("compaction", std::move(jp));
    }
    if (args.chaos) {
      service::Json jch = service::Json::object();
      jch.set("injected",
              service::Json(static_cast<double>(c.faults_injected)));
      jch.set("tolerated",
              service::Json(static_cast<double>(c.faults_tolerated)));
      summary.set("chaos", std::move(jch));
    }
    // Distinct-coverage totals across every model's map. These are the
    // numbers a guided run is judged by against a sequential run of the
    // same budget.
    const std::vector<obs::CoverageSnapshot> cov =
        obs::coverage().snapshot_all();
    if (!cov.empty()) {
      std::uint64_t rules_matched = 0, rules_chosen = 0, states = 0,
                    transitions = 0, rules_total = 0, transitions_total = 0;
      service::Json per_model = service::Json::array();
      for (const obs::CoverageSnapshot& s : cov) {
        rules_matched += s.rules_matched_covered();
        rules_chosen += s.rules_chosen_covered();
        states += s.states_covered();
        transitions += s.transitions_covered();
        rules_total += s.rules_total;
        transitions_total += s.transitions_total;
        if (guided) {
          service::Json m = service::Json::object();
          m.set("target", service::Json(s.target));
          m.set("rules_chosen", service::Json(static_cast<double>(
                                    s.rules_chosen_covered())));
          m.set("rules_total",
                service::Json(static_cast<double>(s.rules_total)));
          m.set("states",
                service::Json(static_cast<double>(s.states_covered())));
          m.set("transitions", service::Json(static_cast<double>(
                                   s.transitions_covered())));
          m.set("transitions_total",
                service::Json(static_cast<double>(s.transitions_total)));
          per_model.push(std::move(m));
        }
      }
      service::Json jc = service::Json::object();
      jc.set("targets", service::Json(static_cast<double>(cov.size())));
      jc.set("rules_matched",
             service::Json(static_cast<double>(rules_matched)));
      jc.set("rules_chosen", service::Json(static_cast<double>(rules_chosen)));
      jc.set("states", service::Json(static_cast<double>(states)));
      jc.set("transitions", service::Json(static_cast<double>(transitions)));
      jc.set("rules_total", service::Json(static_cast<double>(rules_total)));
      jc.set("transitions_total",
             service::Json(static_cast<double>(transitions_total)));
      if (guided) {
        jc.set("budget", service::Json(static_cast<double>(guided->budget)));
        jc.set("corpus_retained",
               service::Json(static_cast<double>(guided->retained)));
        jc.set("fresh_seeds",
               service::Json(static_cast<double>(guided->fresh_seeds)));
        jc.set("models", std::move(per_model));
      }
      summary.set("coverage", std::move(jc));
    }
    std::printf("%s\n", summary.dump().c_str());
    status = c.failures == 0 ? 0 : 1;
  }

  if (!args.keep_cache) {
    std::error_code ec;
    std::filesystem::remove_all(oopts.cache_dir, ec);
  }
  if (!args.trace.empty()) {
    if (obs::Tracer::instance().write_chrome_trace(args.trace))
      std::fprintf(stderr, "trace written to %s (open in ui.perfetto.dev)\n",
                   args.trace.c_str());
    else
      std::fprintf(stderr, "cannot write trace to %s\n", args.trace.c_str());
  }
  return status;
}
