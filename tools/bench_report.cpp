// bench_report: the repo's perf-trajectory recorder.
//
// Runs the selection-throughput and service-throughput workloads in a quick
// mode and merges the results into one machine-readable BENCH_selection.json
// (committed at the repo root each PR, uploaded as a CI artifact), so the
// performance of the warm selection path is tracked across commits:
//
//   selection: model x engine (interpreter | tables-hash | tables-frozen)
//              -> ns/node over the shared accumulator-chain workload
//   service:   jobs/sec of the warm-registry mixed-model batch at 1 and N
//              workers, in-process (compile_batch) and over a pipelined
//              JSON-lines TCP socket session (transport field tells the
//              rows apart; the delta is the wire + event-loop overhead)
//
// --baseline <path> compares against a previously committed report and
// exits non-zero on a >25% regression — the CI perf gate. Because the
// committed baseline was measured on different hardware, the gated
// statistic is machine-normalised: the tables-frozen / interpreter ns/node
// ratio per model (both engines measured in the same run, so CPU speed and
// runner noise divide out). Absolute ns/node and jobs/sec are recorded for
// the trajectory but not gated.
//
// Usage: bench_report [--full] [--out <path>] [--baseline <path>]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "burstab/tables.h"
#include "core/record.h"
#include "models/workload.h"
#include "net/server.h"
#include "obs/coverage.h"
#include "obs/metrics.h"
#include "select/selector.h"
#include "service/json.h"
#include "service/service.h"
#include "util/timer.h"

using namespace record;

namespace {

struct SelRow {
  std::string model;
  std::string engine;
  std::size_t nodes = 0;
  double ns_per_node = 0;      // best-of-rounds mean (the gated statistic)
  double p50_ns_per_node = 0;  // per-rep distribution, for tail visibility
  double p99_ns_per_node = 0;
};

struct SvcRow {
  const char* transport = "in-process";
  std::size_t workers = 0;
  std::size_t jobs = 0;
  double jobs_per_sec = 0;
};

/// The accumulator-chain workload as kernel-language source — the same
/// program models::chain_program builds as IR, but in the form a socket
/// client actually sends, so the socket row pays the full request path
/// (JSON decode + frontend parse + selection + response encode).
std::string chain_kernel(const models::ChainShape& s, int k) {
  std::string src = "kernel chain;\nbind acc: ";
  src += s.acc;
  src += ";\n";
  std::string expr;
  for (int i = 0; i < k; ++i) {
    if (s.mem2[0] == '\0') {
      std::string v = "m" + std::to_string(i);
      src += "cell " + v + ": " + s.mem1 + "[" + std::to_string(i % 16) +
             "];\n";
      if (i) expr += " + ";
      expr += v;
    } else {
      std::string u = "u" + std::to_string(i);
      std::string v = "v" + std::to_string(i);
      src += "cell " + u + ": " + s.mem1 + "[" + std::to_string(i % 16) +
             "];\n";
      src += "cell " + v + ": " + s.mem2 + "[" +
             std::to_string((i + 1) % 16) + "];\n";
      if (i) expr += " + ";
      expr += u + " * " + v;
    }
  }
  src += "acc = " + expr + ";\n";
  return src;
}

constexpr double kRegressionTolerance = 1.25;  // fail beyond +25%

double run_selection(const core::RetargetResult& target,
                     const burstab::TargetTables* tables,
                     const ir::Program& prog, int reps, SelRow& row,
                     obs::CoverageMap* cov = nullptr) {
  select::SelectScratch scratch;
  {  // warm-up (also populates dynamic table entries / frozen snapshots)
    util::DiagnosticSink d;
    select::CodeSelector sel(*target.base, target.tree_grammar, d, tables,
                             &scratch);
    if (cov) sel.set_coverage(cov);
    (void)sel.select(prog);
  }
  // Best-of-rounds: the minimum over several timed rounds is far less
  // sensitive to scheduler noise than one mean — the regression gate needs
  // a stable statistic, not an average of interruptions. Each rep is also
  // timed individually into a histogram so the report can show the per-rep
  // tail (p50/p99) that the best-of minimum deliberately hides.
  constexpr int kRounds = 5;
  obs::Histogram rep_ns;
  double best_ms = -1;
  for (int round = 0; round < kRounds; ++round) {
    double round_ms = 0;
    for (int rep = 0; rep < reps; ++rep) {
      util::Timer timer;
      util::DiagnosticSink d;
      select::CodeSelector sel(*target.base, target.tree_grammar, d, tables,
                               &scratch);
      if (cov) sel.set_coverage(cov);
      auto result = sel.select(prog);
      double ms = timer.milliseconds();
      if (!result) return -1;
      row.nodes = sel.stats().nodes_labelled;
      round_ms += ms;
      rep_ns.record(static_cast<std::int64_t>(ms * 1e6));
    }
    double ms = round_ms / reps;
    if (best_ms < 0 || ms < best_ms) best_ms = ms;
  }
  const double nodes = static_cast<double>(row.nodes);
  const obs::HistogramStats dist = rep_ns.stats();
  row.p50_ns_per_node = static_cast<double>(dist.p50) / nodes;
  row.p99_ns_per_node = static_cast<double>(dist.p99) / nodes;
  return best_ms * 1e6 / nodes;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = true;
  std::string out_path = "BENCH_selection.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--full")) quick = false;
    else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
      out_path = argv[++i];
    else if (!std::strcmp(argv[i], "--baseline") && i + 1 < argc)
      baseline_path = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: bench_report [--full] [--out path] "
                   "[--baseline path]\n");
      return 2;
    }
  }
  const int terms = quick ? 32 : 64;
  const int reps = quick ? 10 : 40;

  // --- selection ns/node per model x engine --------------------------------
  std::vector<SelRow> sel_rows;
  std::printf("selection ns/node (%d-term chains, %d reps)\n", terms, reps);
  std::printf("%-11s %-14s %8s %12s %10s %10s\n", "model", "engine", "nodes",
              "ns/node", "p50", "p99");
  for (const models::ChainShape& s : models::kChainShapes) {
    util::DiagnosticSink diags;
    core::RetargetOptions options;
    auto target = core::Record::retarget_model(s.model, options, diags);
    if (!target) {
      std::fprintf(stderr, "%s: retarget failed: %s\n", s.model,
                   diags.first_error().c_str());
      return 1;
    }
    burstab::TableBuildOptions hash_mode;
    hash_mode.freeze = false;
    burstab::TargetTables hash_tables(target->tree_grammar, hash_mode);

    ir::Program prog = models::chain_program(s, terms);
    struct EngineRun {
      const char* name;
      const burstab::TargetTables* tables;
    };
    const EngineRun engines[] = {
        {"interpreter", nullptr},
        {"tables-hash", &hash_tables},
        {"tables-frozen", target->tables.get()},
    };
    for (const EngineRun& e : engines) {
      SelRow row;
      row.model = s.model;
      row.engine = e.name;
      row.ns_per_node = run_selection(*target, e.tables, prog, reps, row);
      if (row.ns_per_node < 0) {
        std::fprintf(stderr, "%s/%s: selection failed\n", s.model, e.name);
        return 1;
      }
      std::printf("%-11s %-14s %8zu %12.1f %10.1f %10.1f\n", s.model, e.name,
                  row.nodes, row.ns_per_node, row.p50_ns_per_node,
                  row.p99_ns_per_node);
      sel_rows.push_back(std::move(row));
    }

    // Obs overhead: the frozen-table run once more with a live CoverageMap
    // attached, so the report tracks what rule/state/transition recording
    // costs on the hot labelling path (relative to the tables-frozen row
    // above). Reported, not gated. With RECORD_OBS_DISABLE the record calls
    // compile out and the report flags the column as compiled_out.
    {
      obs::CoverageMap::Config cc;
      cc.rules = target->tree_grammar.rules().size();
      cc.states = 4096;
      cc.transitions = 1 << 16;
      obs::CoverageMap cov(s.model, std::move(cc));
      SelRow row;
      row.model = s.model;
      row.engine = "tables-frozen-obs";
      row.ns_per_node =
          run_selection(*target, target->tables.get(), prog, reps, row, &cov);
      if (row.ns_per_node < 0) {
        std::fprintf(stderr, "%s/tables-frozen-obs: selection failed\n",
                     s.model);
        return 1;
      }
      std::printf("%-11s %-14s %8zu %12.1f %10.1f %10.1f\n", s.model,
                  row.engine.c_str(), row.nodes, row.ns_per_node,
                  row.p50_ns_per_node, row.p99_ns_per_node);
      sel_rows.push_back(std::move(row));
    }
  }

  // --- service jobs/sec ----------------------------------------------------
  std::vector<SvcRow> svc_rows;
  {
    const int sizes[] = {8, 32};
    const int job_reps = quick ? 4 : 8;
    std::vector<
        std::pair<const models::ChainShape*,
                  std::shared_ptr<const ir::Program>>>
        workload;
    for (const models::ChainShape& s : models::kChainShapes)
      for (int k : sizes)
        workload.emplace_back(
            &s, std::make_shared<const ir::Program>(chain_program(s, k)));

    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    for (std::size_t workers : {std::size_t{1}, std::size_t(hw < 4 ? hw : 4)}) {
      if (!svc_rows.empty() && svc_rows.back().workers == workers) break;
      service::CompileService::Options so;
      so.workers = workers;
      service::CompileService svc(so);
      // Pre-warm the registry (retarget-only jobs), then time the batch.
      {
        std::vector<service::CompileJob> warm;
        for (const models::ChainShape& s : models::kChainShapes) {
          service::CompileJob j;
          j.model = s.model;
          warm.push_back(std::move(j));
        }
        (void)svc.compile_batch(std::move(warm));
      }
      std::vector<service::CompileJob> jobs;
      for (int rep = 0; rep < job_reps; ++rep)
        for (const auto& [shape, prog] : workload) {
          service::CompileJob j;
          j.model = shape->model;
          j.program = prog;
          j.want_listing = false;
          jobs.push_back(std::move(j));
        }
      util::Timer timer;
      std::vector<service::JobResult> results =
          svc.compile_batch(std::move(jobs));
      double seconds = timer.seconds();
      std::size_t ok = 0;
      for (const service::JobResult& r : results)
        if (r.ok) ++ok;
      if (ok != results.size()) {
        std::fprintf(stderr, "service: %zu/%zu jobs failed\n",
                     results.size() - ok, results.size());
        return 1;
      }
      SvcRow row;
      row.workers = workers;
      row.jobs = results.size();
      row.jobs_per_sec = static_cast<double>(results.size()) / seconds;
      std::printf("service: %zu workers, %zu jobs -> %.1f jobs/sec "
                  "(in-process)\n",
                  row.workers, row.jobs, row.jobs_per_sec);
      svc_rows.push_back(row);
    }
  }

  // --- service jobs/sec over the socket ------------------------------------
  // Same mixed-model batch, but pipelined through recordd's event loop as
  // one JSON-lines TCP session: requests carry kernel source, so each job
  // also pays JSON decode + frontend parse + response encode. Compared with
  // the in-process rows above this isolates the wire overhead.
  {
    const int sizes[] = {8, 32};
    const int job_reps = quick ? 4 : 8;
    std::string batch;
    std::size_t job_count = 0;
    for (int rep = 0; rep < job_reps; ++rep)
      for (const models::ChainShape& s : models::kChainShapes)
        for (int k : sizes) {
          service::Json req = service::Json::object();
          req.set("model", s.model);
          req.set("source", chain_kernel(s, k));
          batch += req.dump();
          batch += '\n';
          ++job_count;
        }

    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    std::size_t prev_workers = 0;
    for (std::size_t workers : {std::size_t{1}, std::size_t(hw < 4 ? hw : 4)}) {
      if (workers == prev_workers) break;
      prev_workers = workers;
      service::CompileService::Options so;
      so.workers = workers;
      service::CompileService svc(so);
      {  // pre-warm the registry (retarget-only jobs)
        std::vector<service::CompileJob> warm;
        for (const models::ChainShape& s : models::kChainShapes) {
          service::CompileJob j;
          j.model = s.model;
          warm.push_back(std::move(j));
        }
        (void)svc.compile_batch(std::move(warm));
      }
      net::LineServer server(svc, {});
      std::string err;
      if (!server.start(&err)) {
        std::fprintf(stderr, "service/socket: start failed: %s\n",
                     err.c_str());
        return 1;
      }
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(server.port());
      inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
      if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                              sizeof addr) != 0) {
        std::fprintf(stderr, "service/socket: connect failed\n");
        return 1;
      }
      util::Timer timer;
      for (std::size_t off = 0; off < batch.size();) {
        ssize_t n = ::send(fd, batch.data() + off, batch.size() - off, 0);
        if (n <= 0) {
          std::fprintf(stderr, "service/socket: send failed\n");
          return 1;
        }
        off += static_cast<std::size_t>(n);
      }
      std::string responses;
      std::size_t lines = 0;
      char buf[16384];
      while (lines < job_count) {
        ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) {
          std::fprintf(stderr, "service/socket: connection lost\n");
          return 1;
        }
        for (ssize_t i = 0; i < n; ++i)
          if (buf[i] == '\n') ++lines;
        responses.append(buf, static_cast<std::size_t>(n));
      }
      double seconds = timer.seconds();
      ::close(fd);
      server.stop();
      std::size_t ok = 0, pos = 0;
      while (pos < responses.size()) {
        std::size_t nl = responses.find('\n', pos);
        if (nl == std::string::npos) break;
        auto parsed = service::Json::parse(
            std::string_view(responses).substr(pos, nl - pos));
        if (parsed && (*parsed)["ok"].as_bool()) ++ok;
        pos = nl + 1;
      }
      if (ok != job_count) {
        std::fprintf(stderr, "service/socket: %zu/%zu jobs failed\n",
                     job_count - ok, job_count);
        return 1;
      }
      SvcRow row;
      row.transport = "socket";
      row.workers = workers;
      row.jobs = job_count;
      row.jobs_per_sec = static_cast<double>(job_count) / seconds;
      std::printf("service: %zu workers, %zu jobs -> %.1f jobs/sec "
                  "(socket)\n",
                  row.workers, row.jobs, row.jobs_per_sec);
      svc_rows.push_back(row);
    }
  }

  // --- merged report -------------------------------------------------------
  service::Json report = service::Json::object();
  report.set("benchmark", "bench_report");
  report.set("quick", quick);
  report.set("schema",
             "selection: model x engine -> ns/node; service: jobs/sec");
  service::Json selection = service::Json::array();
  for (const SelRow& r : sel_rows) {
    service::Json row = service::Json::object();
    row.set("model", r.model);
    row.set("engine", r.engine);
    row.set("nodes", static_cast<double>(r.nodes));
    row.set("ns_per_node", r.ns_per_node);
    row.set("p50_ns_per_node", r.p50_ns_per_node);
    row.set("p99_ns_per_node", r.p99_ns_per_node);
    selection.push(std::move(row));
  }
  report.set("selection", std::move(selection));
  // Coverage-recording overhead on the warm frozen-table path, per model:
  // tables-frozen-obs ns/node over tables-frozen ns/node, measured in the
  // same run so machine speed divides out.
  {
    service::Json overhead = service::Json::array();
    for (const models::ChainShape& s : models::kChainShapes) {
      double frozen = 0, with_obs = 0;
      for (const SelRow& r : sel_rows) {
        if (r.model != s.model) continue;
        if (r.engine == "tables-frozen") frozen = r.ns_per_node;
        if (r.engine == "tables-frozen-obs") with_obs = r.ns_per_node;
      }
      if (frozen <= 0 || with_obs <= 0) continue;
      service::Json row = service::Json::object();
      row.set("model", s.model);
      row.set("obs_over_frozen_ratio", with_obs / frozen);
#ifdef RECORD_OBS_DISABLE
      row.set("compiled_out", true);
#else
      row.set("compiled_out", false);
#endif
      overhead.push(std::move(row));
    }
    report.set("obs_overhead", std::move(overhead));
  }
  service::Json svc = service::Json::array();
  for (const SvcRow& r : svc_rows) {
    service::Json row = service::Json::object();
    row.set("transport", std::string(r.transport));
    row.set("workers", static_cast<double>(r.workers));
    row.set("jobs", static_cast<double>(r.jobs));
    row.set("jobs_per_sec", r.jobs_per_sec);
    svc.push(std::move(row));
  }
  report.set("service", std::move(svc));

  // --- regression gate vs a committed baseline -----------------------------
  int regressions = 0;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "baseline %s not readable\n",
                   baseline_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::optional<service::Json> base = service::Json::parse(buf.str());
    if (!base) {
      std::fprintf(stderr, "baseline %s is not valid JSON\n",
                   baseline_path.c_str());
      return 1;
    }
    // Gate the frozen/interpreter ns/node ratio per model. Both engines
    // are measured back-to-back in one process, so the ratio is stable
    // across machines; comparing absolute timings against a baseline from
    // different hardware would gate on the runner, not the code.
    auto ratio_of = [](const std::vector<SelRow>& rows,
                       const std::string& model) -> double {
      double interp = 0, frozen = 0;
      for (const SelRow& r : rows) {
        if (r.model != model) continue;
        if (r.engine == "interpreter") interp = r.ns_per_node;
        if (r.engine == "tables-frozen") frozen = r.ns_per_node;
      }
      return interp > 0 && frozen > 0 ? frozen / interp : -1;
    };
    std::vector<SelRow> base_rows;
    const service::Json& bsel = (*base)["selection"];
    for (std::size_t i = 0; i < bsel.size(); ++i) {
      SelRow r;
      r.model = bsel.at(i)["model"].as_string();
      r.engine = bsel.at(i)["engine"].as_string();
      r.ns_per_node = bsel.at(i)["ns_per_node"].as_number();
      base_rows.push_back(std::move(r));
    }
    for (const models::ChainShape& s : models::kChainShapes) {
      double before = ratio_of(base_rows, s.model);
      double now = ratio_of(sel_rows, s.model);
      if (before <= 0 || now <= 0) continue;
      if (now > before * kRegressionTolerance) {
        std::fprintf(stderr,
                     "REGRESSION %s: tables-frozen/interpreter ns ratio "
                     "%.3f -> %.3f (+%.0f%%)\n",
                     s.model, before, now, (now / before - 1) * 100);
        ++regressions;
      }
    }
  }

  std::ofstream out(out_path);
  out << report.dump() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  if (regressions > 0) {
    std::fprintf(stderr, "%d perf regression(s) beyond 25%%\n", regressions);
    return 1;
  }
  return 0;
}
